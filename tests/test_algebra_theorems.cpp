// Randomized, parameterized property checks of the paper's Section 2
// results over generated finite systems:
//
//   Lemma 0:   [C => A] /\ [W' => W]  =>  [(C [] W') => (A [] W)]
//   Theorem 1: [C => A] /\ (A [] W stabilizes to A) /\ [W' => W]
//              =>  (C [] W') stabilizes to A
//   Lemma 2:   (forall i: [Ci => Ai])  =>  [C => A]   (local lifts)
//   Lemma 3:   adds wrappers to Lemma 2
//   Theorem 4: the local-everywhere composition of Theorem 1
//
// plus the negative direction the paper stresses: with only [C => A]init
// (not everywhere), Theorem 1's conclusion fails for some systems.
//
// Each TEST_P instance runs many trials under one seed; premises that the
// random draw fails to satisfy are discarded (and counted, to ensure the
// sweep actually exercises the theorems).
#include <gtest/gtest.h>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"

namespace graybox::algebra {
namespace {

class TheoremSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
  static constexpr int kTrials = 200;
};

TEST_P(TheoremSweep, Lemma0BoxMonotonicity) {
  int checked = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, rng.index(6));
    const System c = random_everywhere_implementation(rng, a);
    const System w_impl = random_everywhere_implementation(rng, w);
    ASSERT_TRUE(implements_everywhere(c, a));
    ASSERT_TRUE(implements_everywhere(w_impl, w));
    const System cw = System::box(c, w_impl);
    const System aw = System::box(a, w);
    // Lemma 0 concerns the relation part; initial sets may differ because
    // random sub-implementations shrink inits, so check everywhere-form.
    EXPECT_TRUE(implements_everywhere(cw, aw));
    ++checked;
  }
  EXPECT_EQ(checked, kTrials);
}

TEST_P(TheoremSweep, Theorem1GrayboxStabilization) {
  int premise_held = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(8));
    const System aw = System::box(a, w);
    if (!aw.well_formed() || !stabilizes_to(aw, a)) continue;  // premise
    ++premise_held;

    const System c = random_everywhere_implementation(rng, a);
    const System w_impl = random_everywhere_implementation(rng, w);
    System cw = System::box(c, w_impl);
    if (!cw.initial().any()) continue;  // boxing needs common init states
    ASSERT_TRUE(cw.well_formed());
    // Theorem 1: the graybox conclusion, for EVERY everywhere
    // implementation and every wrapper refinement.
    EXPECT_TRUE(stabilizes_to(cw, a))
        << "A:\n" << a.to_string() << "W:\n" << w.to_string()
        << "C:\n" << c.to_string() << "W':\n" << w_impl.to_string();
  }
  // The generator is biased toward premise-satisfying draws; make sure the
  // sweep is not vacuous.
  EXPECT_GE(premise_held, 5);
}

TEST_P(TheoremSweep, Theorem1FailsWithoutEverywherePremise) {
  // The negative direction: an init-only implementation can defeat the
  // wrapper. We do not expect EVERY draw to fail — only that failures
  // exist, which is what makes "everywhere" a necessary premise.
  int premise_held = 0;
  int conclusion_failed = 0;
  for (int trial = 0; trial < kTrials * 5; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(6);
    const System a = random_system(rng, params);
    const System w = random_wrapper(rng, a, 1 + rng.index(8));
    const System aw = System::box(a, w);
    if (!aw.well_formed() || !stabilizes_to(aw, a)) continue;
    const System c = random_init_implementation(rng, a);
    if (!implements_init(c, a)) continue;
    ++premise_held;
    const System cw = System::box(c, w);
    if (!cw.initial().any()) continue;
    if (!stabilizes_to(cw, a)) ++conclusion_failed;
  }
  ASSERT_GT(premise_held, 0);
  EXPECT_GT(conclusion_failed, 0)
      << "no counterexample found: suspicious, Figure 1 promises some";
}

TEST_P(TheoremSweep, Lemma2LocalImplementationsCompose) {
  for (int trial = 0; trial < kTrials / 4; ++trial) {
    RandomSystemParams params;
    params.num_states = 2 + rng.index(3);
    const System a0 = random_system(rng, params);
    params.num_states = 2 + rng.index(3);
    const System a1 = random_system(rng, params);
    const std::size_t low = a0.num_states();
    const std::size_t high = a1.num_states();

    const System c0 = random_everywhere_implementation(rng, a0);
    const System c1 = random_everywhere_implementation(rng, a1);

    const System a =
        System::box(lift_local(a0, 0, low, high), lift_local(a1, 1, low, high));
    const System c =
        System::box(lift_local(c0, 0, low, high), lift_local(c1, 1, low, high));
    // Lemma 2: local everywhere implementations compose to a global one.
    EXPECT_TRUE(implements_everywhere(c, a));
  }
}

TEST_P(TheoremSweep, Theorem4LocalEverywhereStabilization) {
  int premise_held = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 2 + rng.index(3);
    const System a0 = random_system(rng, params);
    params.num_states = 2 + rng.index(3);
    const System a1 = random_system(rng, params);
    const std::size_t low = a0.num_states();
    const std::size_t high = a1.num_states();

    const System a =
        System::box(lift_local(a0, 0, low, high), lift_local(a1, 1, low, high));
    if (!a.well_formed()) continue;

    // Local wrappers, lifted and boxed (W = [] Wi).
    const System w0 = random_wrapper(rng, a0, rng.index(4));
    const System w1 = random_wrapper(rng, a1, rng.index(4));
    const System w =
        System::box(lift_local(w0, 0, low, high), lift_local(w1, 1, low, high));
    const System aw = System::box(a, w);
    if (!aw.well_formed() || !stabilizes_to(aw, a)) continue;
    ++premise_held;

    const System c0 = random_everywhere_implementation(rng, a0);
    const System c1 = random_everywhere_implementation(rng, a1);
    const System c =
        System::box(lift_local(c0, 0, low, high), lift_local(c1, 1, low, high));
    const System w0i = random_everywhere_implementation(rng, w0);
    const System w1i = random_everywhere_implementation(rng, w1);
    const System wi = System::box(lift_local(w0i, 0, low, high),
                                  lift_local(w1i, 1, low, high));
    const System cw = System::box(c, wi);
    if (!cw.initial().any()) continue;
    EXPECT_TRUE(stabilizes_to(cw, a));
  }
  EXPECT_GT(premise_held, 0);
}

TEST_P(TheoremSweep, StabilizationComposesTransitively) {
  // Sanity property used implicitly throughout Section 2: if
  // [C => A] everywhere and A stabilizes to A, then C stabilizes to A.
  int checked = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomSystemParams params;
    params.num_states = 3 + rng.index(8);
    const System a = random_system(rng, params);
    if (!stabilizes_to(a, a)) continue;
    const System c = random_everywhere_implementation(rng, a);
    EXPECT_TRUE(stabilizes_to(c, a));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace graybox::algebra
