// Unit tests for the Ricart-Agrawala program: fault-free protocol behaviour
// (requests, deferral, replies, entry, release) and everywhere-implementation
// behaviour from corrupted states.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::me {
namespace {

class RaTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;

  RaTest() : net(sched, kN, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < kN; ++pid) {
      procs.push_back(std::make_unique<RicartAgrawala>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }

  RicartAgrawala& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sched.run_all(); }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<RicartAgrawala>> procs;
};

TEST_F(RaTest, InitialStateIsThinkingWithZeroReq) {
  for (ProcessId pid = 0; pid < kN; ++pid) {
    EXPECT_TRUE(p(pid).thinking());
    EXPECT_EQ(p(pid).req(), (clk::Timestamp{0, pid}));
    EXPECT_EQ(p(pid).cs_entries(), 0u);
  }
}

TEST_F(RaTest, SoloRequestEntersAfterAllReplies) {
  p(0).request_cs();
  EXPECT_TRUE(p(0).hungry());
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), kN - 1);
  settle();
  EXPECT_TRUE(p(0).eating());
  EXPECT_EQ(p(0).cs_entries(), 1u);
}

TEST_F(RaTest, ReleaseReturnsToThinking) {
  p(0).request_cs();
  settle();
  p(0).release_cs();
  EXPECT_TRUE(p(0).thinking());
  settle();
  EXPECT_EQ(p(0).cs_entries(), 1u);
}

TEST_F(RaTest, RequestWhileNotThinkingIgnored) {
  p(0).request_cs();
  const auto req = p(0).req();
  p(0).request_cs();  // hungry: no-op, REQ unchanged (Request Spec)
  EXPECT_EQ(p(0).req(), req);
  settle();
  p(0).request_cs();  // eating: no-op
  EXPECT_TRUE(p(0).eating());
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), kN - 1);
}

TEST_F(RaTest, ReleaseWhileNotEatingIgnored) {
  p(0).release_cs();
  EXPECT_TRUE(p(0).thinking());
  p(0).request_cs();
  p(0).release_cs();  // hungry: no-op
  EXPECT_TRUE(p(0).hungry());
}

TEST_F(RaTest, MutualExclusionUnderContention) {
  p(0).request_cs();
  p(1).request_cs();
  p(2).request_cs();
  std::size_t max_eating = 0;
  std::uint64_t total_entries = 0;
  for (int round = 0; round < 200; ++round) {
    if (!sched.step()) break;
    std::size_t eating = 0;
    for (ProcessId pid = 0; pid < kN; ++pid)
      if (p(pid).eating()) ++eating;
    max_eating = std::max(max_eating, eating);
    for (ProcessId pid = 0; pid < kN; ++pid) {
      if (p(pid).eating()) {
        p(pid).release_cs();
        ++total_entries;
      }
    }
  }
  EXPECT_LE(max_eating, 1u);
  EXPECT_EQ(total_entries, 3u);
}

TEST_F(RaTest, EarlierTimestampWinsContention) {
  p(0).request_cs();  // gets the earlier timestamp
  sched.run_for(0);   // no time passes; both requests concurrent
  p(1).request_cs();
  // 1's request is later (its clock ticked past nothing yet — both have
  // counter 1, pid breaks the tie in 0's favor).
  settle();
  // Only one eats; it must be 0.
  EXPECT_TRUE(p(0).eating());
  EXPECT_TRUE(p(1).hungry());
  p(0).release_cs();
  settle();
  EXPECT_TRUE(p(1).eating());
}

TEST_F(RaTest, DeferredRequestAnsweredOnRelease) {
  p(0).request_cs();
  settle();
  EXPECT_TRUE(p(0).eating());
  p(1).request_cs();
  settle();
  // 0 defers 1 (it is eating with an earlier request).
  EXPECT_TRUE(p(0).deferred(1));
  EXPECT_TRUE(p(1).hungry());
  const auto replies_before = net.sent_of_type(net::MsgType::kReply);
  p(0).release_cs();
  settle();
  EXPECT_GT(net.sent_of_type(net::MsgType::kReply), replies_before);
  EXPECT_TRUE(p(1).eating());
}

TEST_F(RaTest, ThinkingProcessRepliesImmediately) {
  p(0).request_cs();
  settle();
  // 1 and 2 are thinking: they must have replied, not deferred.
  EXPECT_FALSE(p(1).deferred(0));
  EXPECT_FALSE(p(2).deferred(0));
  EXPECT_TRUE(p(0).eating());
}

TEST_F(RaTest, ViewsTrackPeerRequests) {
  p(1).request_cs();
  const auto req1 = p(1).req();
  settle();
  EXPECT_EQ(p(0).view_of(1), req1);
}

TEST_F(RaTest, InvariantIViewsNeverOvershoot) {
  // Run a busy fault-free interleaving; at every quiescent point views
  // must satisfy j.REQk = REQk or j.REQk lt REQk (Theorem A.1).
  Rng rng(9);
  for (int round = 0; round < 60; ++round) {
    const ProcessId pid = static_cast<ProcessId>(rng.index(kN));
    if (p(pid).thinking()) p(pid).request_cs();
    if (p(pid).eating()) p(pid).release_cs();
    for (int s = 0; s < 3; ++s) sched.step();
  }
  settle();
  for (ProcessId pid = 0; pid < kN; ++pid)
    if (p(pid).eating()) p(pid).release_cs();
  settle();
  for (ProcessId j = 0; j < kN; ++j) {
    for (ProcessId k = 0; k < kN; ++k) {
      if (j == k) continue;
      const auto view = p(j).view_of(k);
      const auto actual = p(k).req();
      EXPECT_TRUE(view == actual || clk::lt(view, actual))
          << "view " << view.to_string() << " overshoots REQ "
          << actual.to_string();
    }
  }
}

TEST_F(RaTest, ReqTracksClockWhileThinking) {
  // Release Spec: t.j => REQj = ts.j at every event.
  p(1).request_cs();
  settle();
  // 0 received a request (an event): its REQ must equal its clock now.
  EXPECT_EQ(p(0).req(), p(0).clock().now());
}

TEST_F(RaTest, TotalHandlerToleratesCorruptMessages) {
  net::Message junk;
  junk.type = net::MsgType::kRelease;  // RA never sends these
  junk.from = 1;
  junk.to = 0;
  junk.ts = clk::Timestamp{999999, 1};
  p(0).on_message(junk);
  junk.from = 99;  // out-of-range sender
  p(0).on_message(junk);
  junk.from = 0;  // self-loop sender
  p(0).on_message(junk);
  EXPECT_TRUE(p(0).thinking());
}

TEST_F(RaTest, CorruptedHighClockPropagatesAndSystemProceeds) {
  p(0).fault_set_clock(1'000'000);
  p(0).request_cs();
  settle();
  EXPECT_TRUE(p(0).eating());
  p(0).release_cs();
  // Peers witnessed the huge timestamp; later requests still work.
  p(1).request_cs();
  settle();
  EXPECT_TRUE(p(1).eating());
  EXPECT_GT(p(1).req().counter, 1'000'000u);
}

TEST_F(RaTest, CorruptedLowViewHealsOnReply) {
  p(0).request_cs();
  settle();
  EXPECT_TRUE(p(0).eating());
  p(0).release_cs();
  settle();
  // Corrupt 0's view of 1 downward; 1's next request heals it directly.
  p(0).fault_set_view(1, clk::Timestamp{0, 1});
  p(1).request_cs();
  const auto req1 = p(1).req();
  settle();
  EXPECT_EQ(p(0).view_of(1), req1);
}

TEST_F(RaTest, CorruptedStateIsTypeValid) {
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    p(0).corrupt_state(rng);
    const auto s = p(0).state();
    EXPECT_TRUE(s == TmeState::kThinking || s == TmeState::kHungry ||
                s == TmeState::kEating);
    for (ProcessId k = 0; k < kN; ++k) {
      // Views and flags must remain readable without contract failures.
      (void)p(0).view_of(k);
      if (k != 0) (void)p(0).knows_earlier(k);
      (void)p(0).received_pending(k);
    }
  }
}

TEST_F(RaTest, PollReevaluatesEntryAfterCorruption) {
  // Plant a state where entry is enabled but no message will arrive: the
  // client's poll must let the process enter.
  p(0).fault_set_state(TmeState::kHungry);
  p(0).fault_set_req(clk::Timestamp{1, 0});
  p(0).fault_set_view(1, clk::Timestamp{50, 1});
  p(0).fault_set_view(2, clk::Timestamp{50, 2});
  EXPECT_TRUE(p(0).hungry());
  p(0).poll();
  EXPECT_TRUE(p(0).eating());
}

TEST_F(RaTest, StateObserverSeesProgramTransitions) {
  std::vector<std::pair<TmeState, TmeState>> transitions;
  p(0).add_state_observer([&](TmeState from, TmeState to) {
    transitions.emplace_back(from, to);
  });
  p(0).request_cs();
  settle();
  p(0).release_cs();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0],
            std::make_pair(TmeState::kThinking, TmeState::kHungry));
  EXPECT_EQ(transitions[1],
            std::make_pair(TmeState::kHungry, TmeState::kEating));
  EXPECT_EQ(transitions[2],
            std::make_pair(TmeState::kEating, TmeState::kThinking));
}

TEST_F(RaTest, CorruptionDoesNotFireStateObserver) {
  int fired = 0;
  p(0).add_state_observer([&](TmeState, TmeState) { ++fired; });
  p(0).fault_set_state(TmeState::kEating);
  EXPECT_EQ(fired, 0);
}

TEST_F(RaTest, MonotoneViewOptionRefusesDowngrade) {
  sim::Scheduler s2;
  net::Network n2(s2, 2, net::DelayModel::fixed(1), Rng(6));
  RicartAgrawalaOptions opts;
  opts.monotone_views = true;
  RicartAgrawala a(0, n2, opts), b(1, n2);
  n2.set_handler(0, [&](const net::Message& m) { a.on_message(m); });
  n2.set_handler(1, [&](const net::Message& m) { b.on_message(m); });
  a.fault_set_view(1, clk::Timestamp{1'000'000, 1});
  b.request_cs();
  s2.run_all();
  // The ablation variant keeps the corrupted-high view forever.
  EXPECT_EQ(a.view_of(1).counter, 1'000'000u);
}

TEST(RaSingleProcess, EntersImmediatelyWithNoPeers) {
  sim::Scheduler sched;
  net::Network net(sched, 1, net::DelayModel::fixed(1), Rng(7));
  RicartAgrawala solo(0, net);
  net.set_handler(0, [&](const net::Message& m) { solo.on_message(m); });
  solo.request_cs();
  EXPECT_TRUE(solo.eating());
  solo.release_cs();
  EXPECT_TRUE(solo.thinking());
}

TEST_F(RaTest, AlgorithmName) {
  EXPECT_EQ(p(0).algorithm(), "ricart-agrawala");
}

}  // namespace
}  // namespace graybox::me
