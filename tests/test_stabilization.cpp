// Integration tests for the headline result (Theorem 8 / Corollary 11 made
// executable): wrapped everywhere-implementations stabilize after arbitrary
// fault bursts; parameterized across algorithms, fault kinds, burst sizes,
// and seeds.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"

namespace graybox::core {
namespace {

HarnessConfig wrapped_config(Algorithm algo, std::uint64_t seed) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  return config;
}

FaultScenario burst_scenario(std::size_t burst, net::FaultMix mix) {
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = burst;
  scenario.mix = mix;
  scenario.observation = 6000;
  scenario.drain = 4000;
  return scenario;
}

// --- Per-fault-kind recovery (the paper's full fault model, one kind at a
// time so a regression names the failing kind) -----------------------------

class FaultKindRecovery
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, net::FaultKind, std::uint64_t>> {};

TEST_P(FaultKindRecovery, WrappedSystemStabilizes) {
  const auto [algo, kind, seed] = GetParam();
  const auto result =
      run_fault_experiment(wrapped_config(algo, seed),
                           burst_scenario(6, net::FaultMix::only(kind)));
  EXPECT_TRUE(result.report.stabilized)
      << "algo=" << to_string(algo) << " kind=" << net::to_string(kind)
      << " seed=" << seed << " -> " << result.report.to_string();
  // Post-fault progress actually happened.
  EXPECT_GT(result.stats.cs_entries, 0u);
}

std::string fault_kind_name(
    const ::testing::TestParamInfo<
        std::tuple<Algorithm, net::FaultKind, std::uint64_t>>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += "_";
  name += net::to_string(std::get<1>(info.param));
  name += "_s" + std::to_string(std::get<2>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultKindRecovery,
    ::testing::Combine(
        ::testing::Values(Algorithm::kRicartAgrawala, Algorithm::kLamport),
        ::testing::Values(net::FaultKind::kMessageDrop,
                          net::FaultKind::kMessageDuplicate,
                          net::FaultKind::kMessageCorrupt,
                          net::FaultKind::kMessageReorder,
                          net::FaultKind::kSpuriousMessage,
                          net::FaultKind::kProcessCorrupt,
                          net::FaultKind::kChannelClear),
        ::testing::Values(11u, 29u)),
    fault_kind_name);

// --- Mixed bursts of increasing size -----------------------------------------

class MixedBurstRecovery
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::size_t>> {};

TEST_P(MixedBurstRecovery, WrappedSystemStabilizes) {
  const auto [algo, burst] = GetParam();
  const auto result = run_fault_experiment(
      wrapped_config(algo, 5 + burst),
      burst_scenario(burst, net::FaultMix::all()));
  EXPECT_TRUE(result.report.stabilized)
      << "burst=" << burst << " -> " << result.report.to_string();
}

std::string burst_name(
    const ::testing::TestParamInfo<std::tuple<Algorithm, std::size_t>>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += "_burst" + std::to_string(std::get<1>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Bursts, MixedBurstRecovery,
    ::testing::Combine(
        ::testing::Values(Algorithm::kRicartAgrawala, Algorithm::kLamport),
        ::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{15},
                          std::size_t{40})),
    burst_name);

// --- Seed sweep: many adversaries against the default config ------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RicartAgrawalaStabilizes) {
  const auto result =
      run_fault_experiment(wrapped_config(Algorithm::kRicartAgrawala,
                                          GetParam()),
                           burst_scenario(12, net::FaultMix::all()));
  EXPECT_TRUE(result.report.stabilized) << result.report.to_string();
}

TEST_P(SeedSweep, LamportStabilizes) {
  const auto result = run_fault_experiment(
      wrapped_config(Algorithm::kLamport, GetParam()),
      burst_scenario(12, net::FaultMix::all()));
  EXPECT_TRUE(result.report.stabilized) << result.report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range(std::uint64_t{100},
                                          std::uint64_t{110}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- The contrast the wrapper makes --------------------------------------------

TEST(BareSystem, CanFailToRecoverFromChannelClears) {
  // Without the wrapper the paper gives a concrete non-recovery scenario
  // (Section 4). Bare systems may survive some bursts by luck; this test
  // pins a scripted loss pattern where they provably cannot: all requests
  // of two concurrent competitors are cleared.
  HarnessConfig config = wrapped_config(Algorithm::kRicartAgrawala, 3);
  config.wrapped = false;
  config.client.wants_cs = false;  // scripted requests only

  FaultScenario scenario;
  scenario.warmup = 100;
  scenario.observation = 6000;
  scenario.drain = 4000;
  scenario.scripted_fault = [](SystemHarness& h) {
    h.process(0).request_cs();
    h.process(1).request_cs();
    const std::size_t n = h.network().size();
    for (ProcessId to = 0; to < n; ++to) {
      if (to != 0) h.network().channel(0, to).fault_clear();
      if (to != 1) h.network().channel(1, to).fault_clear();
    }
  };
  const auto result = run_fault_experiment(config, scenario);
  EXPECT_FALSE(result.report.stabilized);
  EXPECT_TRUE(result.report.starvation);
}

TEST(WrappedSystem, RecoversFromTheSameScriptedLoss) {
  HarnessConfig config = wrapped_config(Algorithm::kRicartAgrawala, 3);
  config.client.wants_cs = false;

  FaultScenario scenario;
  scenario.warmup = 100;
  scenario.observation = 6000;
  scenario.drain = 4000;
  scenario.scripted_fault = [](SystemHarness& h) {
    h.process(0).request_cs();
    h.process(1).request_cs();
    const std::size_t n = h.network().size();
    for (ProcessId to = 0; to < n; ++to) {
      if (to != 0) h.network().channel(0, to).fault_clear();
      if (to != 1) h.network().channel(1, to).fault_clear();
    }
  };
  const auto result = run_fault_experiment(config, scenario);
  EXPECT_TRUE(result.report.stabilized) << result.report.to_string();
  EXPECT_EQ(result.stats.cs_entries, 2u);  // both scripted requests served
}

// --- Latency sanity --------------------------------------------------------------

TEST(StabilizationLatency, BoundedByScenarioWindow) {
  const auto result = run_fault_experiment(
      wrapped_config(Algorithm::kRicartAgrawala, 77),
      burst_scenario(10, net::FaultMix::all()));
  ASSERT_TRUE(result.report.stabilized);
  // The latency is measured from the last fault and must fit well inside
  // the observation window (otherwise the window is too tight to trust).
  EXPECT_LT(result.report.latency, 6000u);
}

// --- Soak: sustained adversarial pressure at scale ------------------------------

class SoakTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SoakTest, SurvivesLongContinuousPressureThenStabilizes) {
  // 400 random faults of every kind over 20,000 ticks against a 6-process
  // wrapped system, then calm: the entire point of stabilization is that
  // the amount of prior damage is irrelevant once faults stop.
  HarnessConfig config = wrapped_config(GetParam(), 4242);
  config.n = 6;
  SystemHarness h(config);
  h.start();
  h.faults().schedule_continuous(200, 20200, 50, net::FaultMix::all());
  h.run_for(26000);
  h.drain(6000);
  const StabilizationReport report = h.stabilization_report();
  EXPECT_TRUE(report.stabilized) << report.to_string();
  EXPECT_GT(h.faults().total_injected(), 300u);
  EXPECT_TRUE(h.quiescent());
  // Service kept flowing throughout the bombardment.
  EXPECT_GT(h.stats().cs_entries, 100u);
  // The clean suffix: no safety violation within the calm tail.
  if (report.last_safety_violation != kNever) {
    EXPECT_LT(report.last_safety_violation, 25000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SoakTest,
                         ::testing::Values(Algorithm::kRicartAgrawala,
                                           Algorithm::kLamport),
                         [](const auto& info) {
                           return info.param == Algorithm::kRicartAgrawala
                                      ? "ra"
                                      : "lamport";
                         });

TEST(StabilizationLatency, ZeroWhenBurstCausesNoViolation) {
  // A single dropped message can be fully absorbed (e.g. a stale reply):
  // then the report shows no post-fault violations.
  HarnessConfig config = wrapped_config(Algorithm::kRicartAgrawala, 200);
  config.client.think_mean = 1000;  // rare competition
  FaultScenario scenario = burst_scenario(1, net::FaultMix::only(
                                                 net::FaultKind::kMessageDrop));
  const auto result = run_fault_experiment(config, scenario);
  EXPECT_TRUE(result.report.stabilized);
}

}  // namespace
}  // namespace graybox::core
