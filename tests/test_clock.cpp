// Unit tests for timestamps (the paper's `lt` total order), logical clocks
// (everywhere implementation of Timestamp Spec), and vector clocks (the
// monitor-side happened-before decider).
#include <gtest/gtest.h>

#include "clock/logical_clock.hpp"
#include "clock/timestamp.hpp"
#include "clock/vector_clock.hpp"
#include "common/rng.hpp"

namespace graybox::clk {
namespace {

// --- Timestamp / lt -------------------------------------------------------

TEST(Timestamp, LtOrdersByCounterFirst) {
  EXPECT_TRUE(lt(Timestamp{1, 9}, Timestamp{2, 0}));
  EXPECT_FALSE(lt(Timestamp{2, 0}, Timestamp{1, 9}));
}

TEST(Timestamp, LtBreaksTiesByPid) {
  EXPECT_TRUE(lt(Timestamp{5, 1}, Timestamp{5, 2}));
  EXPECT_FALSE(lt(Timestamp{5, 2}, Timestamp{5, 1}));
}

TEST(Timestamp, LtIsIrreflexive) {
  const Timestamp ts{3, 1};
  EXPECT_FALSE(lt(ts, ts));
}

TEST(Timestamp, LtIsTotal) {
  // For distinct timestamps exactly one direction holds.
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Timestamp a{rng.uniform(0, 5), static_cast<ProcessId>(rng.index(4))};
    const Timestamp b{rng.uniform(0, 5), static_cast<ProcessId>(rng.index(4))};
    if (a == b) {
      EXPECT_FALSE(lt(a, b));
      EXPECT_FALSE(lt(b, a));
    } else {
      EXPECT_NE(lt(a, b), lt(b, a));
    }
  }
}

TEST(Timestamp, LtIsTransitive) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Timestamp a{rng.uniform(0, 4), static_cast<ProcessId>(rng.index(3))};
    const Timestamp b{rng.uniform(0, 4), static_cast<ProcessId>(rng.index(3))};
    const Timestamp c{rng.uniform(0, 4), static_cast<ProcessId>(rng.index(3))};
    if (lt(a, b) && lt(b, c)) {
      EXPECT_TRUE(lt(a, c));
    }
  }
}

TEST(Timestamp, ToStringFormat) {
  EXPECT_EQ((Timestamp{12, 3}).to_string(), "12.3");
}

// --- LogicalClock -----------------------------------------------------------

TEST(LogicalClock, StartsAtZero) {
  LogicalClock lc(2);
  EXPECT_EQ(lc.now(), (Timestamp{0, 2}));
}

TEST(LogicalClock, TickIncrements) {
  LogicalClock lc(0);
  EXPECT_EQ(lc.tick(), (Timestamp{1, 0}));
  EXPECT_EQ(lc.tick(), (Timestamp{2, 0}));
}

TEST(LogicalClock, WitnessJumpsAboveObserved) {
  LogicalClock lc(0);
  const Timestamp after = lc.witness(Timestamp{100, 1});
  EXPECT_EQ(after.counter, 101u);
  EXPECT_TRUE(lt(Timestamp{100, 1}, after));
}

TEST(LogicalClock, WitnessOfOlderStillTicks) {
  LogicalClock lc(0);
  for (int i = 0; i < 10; ++i) lc.tick();
  const Timestamp after = lc.witness(Timestamp{3, 1});
  EXPECT_EQ(after.counter, 11u);
}

TEST(LogicalClock, HbImpliesLtAcrossMessages) {
  // Timestamp Spec: e hb f => ts.e < ts.f. Simulate send/receive chains.
  LogicalClock a(0), b(1);
  const Timestamp send1 = a.tick();
  const Timestamp recv1 = b.witness(send1);
  const Timestamp send2 = b.tick();
  const Timestamp recv2 = a.witness(send2);
  EXPECT_TRUE(lt(send1, recv1));
  EXPECT_TRUE(lt(recv1, send2));
  EXPECT_TRUE(lt(send2, recv2));
}

TEST(LogicalClock, EverywhereRecoveryFromCorruption) {
  // The everywhere property: from ANY corrupted counter, hb => lt still
  // holds for subsequent events.
  LogicalClock a(0), b(1);
  a.corrupt(1'000'000);
  const Timestamp send = a.tick();
  const Timestamp recv = b.witness(send);
  EXPECT_TRUE(lt(send, recv));  // b absorbed the corrupted value
  EXPECT_GT(recv.counter, 1'000'000u);
}

TEST(LogicalClock, CorruptLowHealsByWitnessing) {
  LogicalClock a(0), b(1);
  for (int i = 0; i < 50; ++i) b.tick();
  a.corrupt(0);
  const Timestamp recv = a.witness(b.now());
  EXPECT_GT(recv.counter, 50u);
}

// --- VectorClock --------------------------------------------------------------

TEST(VectorClock, TickAdvancesOwnComponent) {
  VectorClock vc(1, 3);
  vc.tick();
  vc.tick();
  EXPECT_EQ(vc.component(1), 2u);
  EXPECT_EQ(vc.component(0), 0u);
}

TEST(VectorClock, WitnessMergesComponentwiseMax) {
  VectorClock a(0, 3), b(1, 3);
  a.tick();
  a.tick();        // a = <2,0,0>
  b.witness(a);    // b = <2,1,0>
  EXPECT_EQ(b.component(0), 2u);
  EXPECT_EQ(b.component(1), 1u);
}

TEST(VectorClock, HappenedBeforeAfterMessage) {
  VectorClock a(0, 2), b(1, 2);
  a.tick();
  const VectorClock at_send = a;
  b.witness(a);
  EXPECT_TRUE(at_send.happened_before(b));
  EXPECT_FALSE(b.happened_before(at_send));
}

TEST(VectorClock, ConcurrentEventsDetected) {
  VectorClock a(0, 2), b(1, 2);
  a.tick();
  b.tick();
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.happened_before(b));
  EXPECT_FALSE(b.happened_before(a));
}

TEST(VectorClock, HappenedBeforeIsStrict) {
  VectorClock a(0, 2);
  a.tick();
  const VectorClock copy = a;
  EXPECT_FALSE(a.happened_before(copy));
  EXPECT_FALSE(a.concurrent_with(copy));
}

TEST(VectorClock, TransitiveThroughIntermediary) {
  VectorClock a(0, 3), b(1, 3), c(2, 3);
  a.tick();
  const VectorClock ra = a;
  b.witness(a);
  const VectorClock rb = b;
  c.witness(b);
  EXPECT_TRUE(ra.happened_before(rb));
  EXPECT_TRUE(rb.happened_before(c));
  EXPECT_TRUE(ra.happened_before(c));
}

TEST(VectorClock, ToString) {
  VectorClock vc(0, 3);
  vc.tick();
  EXPECT_EQ(vc.to_string(), "<1,0,0>");
}

// --- Inline/heap storage boundary ------------------------------------------
//
// Clocks keep their component array inline up to kInlineComponents and fall
// back to the heap beyond it. The representation must be invisible: every
// observable behaviour has to be identical one below, exactly at, and one
// above the boundary.

class VectorClockBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VectorClockBoundary, TickWitnessRoundTrip) {
  const std::size_t n = GetParam();
  VectorClock a(0, n), b(n - 1, n);
  for (int i = 0; i < 5; ++i) a.tick();
  b.witness(a);
  EXPECT_EQ(a.size(), n);
  EXPECT_EQ(b.size(), n);
  EXPECT_EQ(b.component(0), 5u);  // merged from a's 5 ticks
  EXPECT_EQ(b.component(n - 1), 1u);  // witness ticks b's own component
  for (std::size_t i = 1; i + 1 < n; ++i) EXPECT_EQ(b.component(i), 0u);
}

TEST_P(VectorClockBoundary, CopyMoveAndEqualityRoundTrip) {
  const std::size_t n = GetParam();
  VectorClock a(0, n);
  for (int i = 0; i < 3; ++i) a.tick();

  VectorClock copy = a;  // copy-construct
  EXPECT_TRUE(copy == a);
  VectorClock assigned(1, n);
  assigned = a;  // copy-assign across owners
  EXPECT_TRUE(assigned == a);

  VectorClock moved = std::move(copy);  // move-construct
  EXPECT_TRUE(moved == a);
  VectorClock move_assigned(1, n);
  move_assigned = std::move(assigned);
  EXPECT_TRUE(move_assigned == a);

  // components() must expose exactly n live values.
  const auto span = moved.components();
  ASSERT_EQ(span.size(), n);
  EXPECT_EQ(span[0], 3u);
  EXPECT_EQ(span[n - 1], 0u);
}

TEST_P(VectorClockBoundary, HappenedBeforeAndConcurrency) {
  const std::size_t n = GetParam();
  VectorClock a(0, n), b(n / 2, n);
  a.tick();
  const VectorClock at_send = a;
  b.witness(a);
  EXPECT_TRUE(at_send.happened_before(b));
  EXPECT_FALSE(b.happened_before(at_send));

  VectorClock c(n - 1, n);
  c.tick();
  EXPECT_TRUE(c.concurrent_with(at_send));
  EXPECT_TRUE(at_send.concurrent_with(c));
}

TEST_P(VectorClockBoundary, CrossSizeAssignmentRebinds) {
  // Assigning across the boundary in both directions must land on the
  // target size's storage mode with the source's values.
  const std::size_t n = GetParam();
  VectorClock small(0, 2);
  small.tick();
  VectorClock sized(1, n);
  sized.tick();
  small = sized;  // possibly inline -> heap
  EXPECT_EQ(small.size(), n);
  EXPECT_EQ(small.component(1), 1u);
  VectorClock two(0, 2);
  two.tick();
  sized = two;  // possibly heap -> inline
  EXPECT_EQ(sized.size(), 2u);
  EXPECT_EQ(sized.component(0), 1u);
  EXPECT_TRUE(sized == two);
}

INSTANTIATE_TEST_SUITE_P(AroundInlineCapacity, VectorClockBoundary,
                         ::testing::Values(VectorClock::kInlineComponents - 1,
                                           VectorClock::kInlineComponents,
                                           VectorClock::kInlineComponents + 1));

}  // namespace
}  // namespace graybox::clk
