// Independent oracles for the algebra decision procedures.
//
// checks.cpp decides implements/stabilizes via reachable-edge inclusion and
// SCC analysis. Here the same questions are answered from first principles
// — explicit bounded path enumeration and explicit simple-cycle
// enumeration over the computation semantics — and the two answers are
// compared across random systems. The oracles are exponential and only run
// on small state spaces, but they share no code with the procedures they
// check beyond the System container itself.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "algebra/checks.hpp"
#include "algebra/generate.hpp"

namespace graybox::algebra {
namespace {

/// All paths of `sys` of exactly `length` edges starting in `starts`,
/// passed to `visit` as state sequences.
void enumerate_paths(const System& sys, const Bitset& starts,
                     std::size_t length,
                     const std::function<void(const std::vector<State>&)>&
                         visit) {
  std::vector<State> path;
  std::function<void()> extend = [&] {
    if (path.size() == length + 1) {
      visit(path);
      return;
    }
    for (const auto next : bits(sys.successors(path.back()))) {
      path.push_back(next);
      extend();
      path.pop_back();
    }
  };
  for (const auto s : bits(starts)) {
    path.assign(1, s);
    extend();
  }
}

/// Oracle for [C => A]init: every C-path of length n from C.init must be a
/// stepwise A-path starting at an A-initial state. Length n (the number of
/// states) is exhaustive: any violation is witnessed within n steps.
bool oracle_implements_init(const System& c, const System& a) {
  if (!c.initial().is_subset_of(a.initial())) return false;
  bool ok = true;
  enumerate_paths(c, c.initial(), c.num_states(),
                  [&](const std::vector<State>& path) {
                    for (std::size_t i = 0; ok && i + 1 < path.size(); ++i) {
                      if (!a.has_transition(path[i], path[i + 1])) ok = false;
                    }
                  });
  return ok;
}

/// All simple cycles of `sys`, passed to `visit` as state sequences whose
/// first and last element coincide. Plain DFS from each root, restricted to
/// states >= root to avoid duplicates (Johnson-style ordering).
void enumerate_simple_cycles(
    const System& sys,
    const std::function<void(const std::vector<State>&)>& visit) {
  const std::size_t n = sys.num_states();
  std::vector<State> path;
  std::vector<bool> on_path(n, false);
  std::function<void(State, State)> extend = [&](State root, State current) {
    for (const auto next : bits(sys.successors(current))) {
      if (next < root) continue;
      if (next == root) {
        path.push_back(root);
        visit(path);
        path.pop_back();
        continue;
      }
      if (on_path[next]) continue;
      on_path[next] = true;
      path.push_back(next);
      extend(root, next);
      path.pop_back();
      on_path[next] = false;
    }
  };
  for (State root = 0; root < n; ++root) {
    path.assign(1, root);
    on_path.assign(n, false);
    on_path[root] = true;
    extend(root, root);
  }
}

/// Oracle for stabilization: an ultimately-periodic computation of C (and
/// in finite graphs those decide the property) has the required suffix iff
/// its cycle consists purely of A-transitions inside Reach_A(A.init). So C
/// stabilizes to A iff every simple cycle of C is "good" in that sense.
bool oracle_stabilizes_to(const System& c, const System& a) {
  const Bitset reach = a.reachable_from_initial();
  bool ok = true;
  enumerate_simple_cycles(c, [&](const std::vector<State>& cycle) {
    for (std::size_t i = 0; ok && i + 1 < cycle.size(); ++i) {
      const State u = cycle[i];
      const State v = cycle[i + 1];
      if (!a.has_transition(u, v) || !reach.test(u) || !reach.test(v))
        ok = false;
    }
  });
  return ok;
}

// --- Cross-checks on hand-built systems ---------------------------------------

TEST(Oracle, AgreesOnFigure1) {
  const System a = figure1_specification();
  const System c = figure1_implementation();
  const System fixed = figure1_everywhere_implementation();
  EXPECT_EQ(oracle_implements_init(c, a), implements_init(c, a));
  EXPECT_EQ(oracle_stabilizes_to(c, a), stabilizes_to(c, a));
  EXPECT_EQ(oracle_stabilizes_to(fixed, a), stabilizes_to(fixed, a));
  EXPECT_EQ(oracle_stabilizes_to(a, a), stabilizes_to(a, a));
}

TEST(Oracle, SimpleCycleEnumerationFindsAllCycles) {
  // Triangle plus a self-loop: exactly two simple cycles.
  System sys(4);
  sys.add_transition(0, 1);
  sys.add_transition(1, 2);
  sys.add_transition(2, 0);
  sys.add_transition(3, 3);
  int cycles = 0;
  enumerate_simple_cycles(sys, [&](const std::vector<State>&) { ++cycles; });
  EXPECT_EQ(cycles, 2);
}

TEST(Oracle, PathEnumerationCountsBranches) {
  // Binary branching for 3 steps: 8 paths.
  System sys(2);
  sys.add_transition(0, 0);
  sys.add_transition(0, 1);
  sys.add_transition(1, 0);
  sys.add_transition(1, 1);
  Bitset start(2);
  start.set(0);
  int paths = 0;
  enumerate_paths(sys, start, 3, [&](const std::vector<State>&) { ++paths; });
  EXPECT_EQ(paths, 8);
}

// --- Randomized agreement -----------------------------------------------------

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng{GetParam()};
};

TEST_P(OracleSweep, ImplementsInitAgrees) {
  for (int trial = 0; trial < 150; ++trial) {
    RandomSystemParams params;
    params.num_states = 2 + rng.index(4);  // keep enumeration tractable
    params.edge_density = 0.35;
    const System a = random_system(rng, params);
    // Mix of genuine sub-implementations and unrelated systems.
    const System c = rng.chance(0.5) ? random_everywhere_implementation(rng, a)
                                     : random_system(rng, params);
    ASSERT_EQ(oracle_implements_init(c, a), implements_init(c, a))
        << "A:\n" << a.to_string() << "C:\n" << c.to_string();
  }
}

TEST_P(OracleSweep, StabilizesToAgrees) {
  for (int trial = 0; trial < 150; ++trial) {
    RandomSystemParams params;
    params.num_states = 2 + rng.index(5);
    params.edge_density = 0.3;
    const System a = random_system(rng, params);
    const System c = rng.chance(0.5) ? random_everywhere_implementation(rng, a)
                                     : random_system(rng, params);
    ASSERT_EQ(oracle_stabilizes_to(c, a), stabilizes_to(c, a))
        << "A:\n" << a.to_string() << "C:\n" << c.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(3u, 7u, 11u, 19u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace graybox::algebra
