// Golden equivalence of the two observation pipelines.
//
// The zero-copy delta path (SnapshotSource::capture + Monitor::step_delta)
// must be observationally indistinguishable from the legacy allocate-and-
// copy full-capture path it replaced: monitors judge the SAME sequence of
// global states, so every verdict — per-monitor totals, first/last
// violation times, even the retained violation records — has to match
// byte-for-byte. These tests run each configuration twice, once per
// pipeline, across the full fault matrix, and diff everything observable.
//
// Monitors never feed back into the simulation, so both runs of a seed
// execute the identical event sequence; the CS schedule comparison at the
// bottom is the cross-check that this premise holds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_injector.hpp"

namespace graybox::core {
namespace {

struct ObservedRun {
  // (time, process) for every thinking/hungry -> eating transition.
  std::vector<std::pair<SimTime, std::size_t>> cs_schedule;
  // Per monitor, in installation order.
  std::vector<std::string> monitor_names;
  std::vector<std::uint64_t> totals;
  std::vector<SimTime> first_times;
  std::vector<SimTime> last_times;
  // Retained records flattened as strings (time + clause + detail).
  std::vector<std::string> retained;
  RunStats stats;
  StabilizationReport report;
};

ObservedRun run_once(Algorithm algo, net::FaultMix mix, std::size_t burst,
                     std::uint64_t seed, bool reference_pipeline) {
  HarnessConfig config;
  config.n = 4;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  config.reference_full_capture = reference_pipeline;

  SystemHarness h(config);

  ObservedRun out;
  std::vector<bool> was_eating(config.n, false);
  h.scheduler().add_observer([&](SimTime t) {
    for (std::size_t j = 0; j < config.n; ++j) {
      const bool eating =
          h.process(static_cast<ProcessId>(j)).state() == me::TmeState::kEating;
      if (eating && !was_eating[j]) out.cs_schedule.emplace_back(t, j);
      was_eating[j] = eating;
    }
  });

  h.start();
  h.run_for(400);
  if (burst > 0) h.faults().burst(burst, mix);
  h.run_for(3000);
  h.drain(2000);

  for (const auto& m : h.monitors().monitors()) {
    out.monitor_names.push_back(m->name());
    out.totals.push_back(m->total_violations());
    out.first_times.push_back(m->first_violation());
    out.last_times.push_back(m->last_violation());
    for (const auto& v : m->violations()) out.retained.push_back(v.to_string());
  }
  out.stats = h.stats();
  out.report = h.stabilization_report();
  return out;
}

void expect_equivalent(const ObservedRun& delta, const ObservedRun& full) {
  // Same dynamics: the event sequence did not depend on the pipeline.
  EXPECT_EQ(delta.cs_schedule, full.cs_schedule);

  // Same verdicts, monitor by monitor.
  ASSERT_EQ(delta.monitor_names, full.monitor_names);
  EXPECT_EQ(delta.totals, full.totals);
  EXPECT_EQ(delta.first_times, full.first_times);
  EXPECT_EQ(delta.last_times, full.last_times);
  EXPECT_EQ(delta.retained, full.retained);

  // Same aggregate stats (observe_ns is wall-clock and excluded).
  EXPECT_EQ(delta.stats.duration, full.stats.duration);
  EXPECT_EQ(delta.stats.cs_entries, full.stats.cs_entries);
  EXPECT_EQ(delta.stats.requests_issued, full.stats.requests_issued);
  EXPECT_EQ(delta.stats.messages_sent, full.stats.messages_sent);
  EXPECT_EQ(delta.stats.wrapper_messages, full.stats.wrapper_messages);
  EXPECT_EQ(delta.stats.me1_violations, full.stats.me1_violations);
  EXPECT_EQ(delta.stats.me3_violations, full.stats.me3_violations);
  EXPECT_EQ(delta.stats.invariant_violations, full.stats.invariant_violations);
  EXPECT_EQ(delta.stats.me2_served, full.stats.me2_served);
  EXPECT_EQ(delta.stats.me2_max_wait, full.stats.me2_max_wait);
  EXPECT_EQ(delta.stats.lspec_clause_violations,
            full.stats.lspec_clause_violations);
  EXPECT_EQ(delta.stats.faults_injected, full.stats.faults_injected);
  EXPECT_EQ(delta.stats.events_executed, full.stats.events_executed);

  // Same stabilization verdict.
  EXPECT_EQ(delta.report.stabilized, full.report.stabilized);
  EXPECT_EQ(delta.report.starvation, full.report.starvation);
  EXPECT_EQ(delta.report.last_fault, full.report.last_fault);
  EXPECT_EQ(delta.report.last_safety_violation,
            full.report.last_safety_violation);
  EXPECT_EQ(delta.report.latency, full.report.latency);
  EXPECT_EQ(delta.report.violations_total, full.report.violations_total);
}

// --- Full fault matrix: each kind alone, per algorithm --------------------

class DeltaVsFullByFaultKind
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, net::FaultKind, std::uint64_t>> {};

TEST_P(DeltaVsFullByFaultKind, IdenticalVerdicts) {
  const auto [algo, kind, seed] = GetParam();
  const auto mix = net::FaultMix::only(kind);
  const auto delta = run_once(algo, mix, 6, seed, false);
  const auto full = run_once(algo, mix, 6, seed, true);
  expect_equivalent(delta, full);
}

std::string matrix_name(
    const ::testing::TestParamInfo<
        std::tuple<Algorithm, net::FaultKind, std::uint64_t>>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += "_";
  name += net::to_string(std::get<1>(info.param));
  name += "_s" + std::to_string(std::get<2>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeltaVsFullByFaultKind,
    ::testing::Combine(
        ::testing::Values(Algorithm::kRicartAgrawala, Algorithm::kLamport),
        ::testing::Values(net::FaultKind::kMessageDrop,
                          net::FaultKind::kMessageDuplicate,
                          net::FaultKind::kMessageCorrupt,
                          net::FaultKind::kMessageReorder,
                          net::FaultKind::kSpuriousMessage,
                          net::FaultKind::kProcessCorrupt,
                          net::FaultKind::kChannelClear),
        ::testing::Values(7u)),
    matrix_name);

// --- Mixed bursts, fault-free runs, and the fragile implementation --------

TEST(DeltaVsFull, MixedBurstRicartAgrawala) {
  const auto delta =
      run_once(Algorithm::kRicartAgrawala, net::FaultMix::all(), 15, 3, false);
  const auto full =
      run_once(Algorithm::kRicartAgrawala, net::FaultMix::all(), 15, 3, true);
  expect_equivalent(delta, full);
}

TEST(DeltaVsFull, MixedBurstLamport) {
  const auto delta =
      run_once(Algorithm::kLamport, net::FaultMix::all(), 15, 4, false);
  const auto full =
      run_once(Algorithm::kLamport, net::FaultMix::all(), 15, 4, true);
  expect_equivalent(delta, full);
}

TEST(DeltaVsFull, FaultFreeRunsAreCleanOnBothPaths) {
  const auto delta =
      run_once(Algorithm::kRicartAgrawala, net::FaultMix::all(), 0, 5, false);
  const auto full =
      run_once(Algorithm::kRicartAgrawala, net::FaultMix::all(), 0, 5, true);
  expect_equivalent(delta, full);
  for (const auto total : delta.totals) EXPECT_EQ(total, 0u);
}

// Fragile drops messages under contention by design: violations without any
// injected fault, exercising the monitors' steady-state reporting paths.
TEST(DeltaVsFull, FragileImplementationMatchesEvenWhenUnstable) {
  const auto delta =
      run_once(Algorithm::kFragile, net::FaultMix::all(), 10, 6, false);
  const auto full =
      run_once(Algorithm::kFragile, net::FaultMix::all(), 10, 6, true);
  expect_equivalent(delta, full);
}

}  // namespace
}  // namespace graybox::core
