// ExperimentEngine and its substrate: the Accumulator/RepeatedResult merge
// algebra, the worker pool, the config digest, and — the load-bearing
// guarantee — that aggregate results and JSON artifacts are identical for
// every --jobs value (serial == parallel, bit for bit, modulo wall-clock
// fields).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/parallel.hpp"
#include "common/report.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/engine.hpp"

namespace graybox::core {
namespace {

// --- parallel_tasks ----------------------------------------------------------

TEST(ParallelTasks, CoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(101);
    parallel_tasks(hits.size(), jobs,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ParallelTasks, ZeroCountIsANoOp) {
  parallel_tasks(0, 4, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(ParallelTasks, ResolveJobs) {
  EXPECT_GE(recommended_jobs(), 1u);
  EXPECT_EQ(resolve_jobs(0), recommended_jobs());
  EXPECT_EQ(resolve_jobs(3), 3u);
}

// --- Accumulator merge algebra ----------------------------------------------

TEST(AccumulatorMerge, BitIdenticalToSequentialAccumulation) {
  // Chunked accumulation + in-order merge must replay the exact add()
  // sequence, so every derived statistic matches BITWISE.
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform01() * 1e4 - 5e3);

  Accumulator serial;
  for (const double x : xs) serial.add(x);

  for (const std::size_t chunks : {2u, 3u, 7u}) {
    std::vector<Accumulator> parts(chunks);
    for (std::size_t i = 0; i < xs.size(); ++i)
      parts[i * chunks / xs.size()].add(xs[i]);
    Accumulator merged;
    for (const Accumulator& part : parts) merged.merge(part);

    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.mean(), serial.mean()) << chunks << " chunks";
    EXPECT_EQ(merged.stddev(), serial.stddev()) << chunks << " chunks";
    EXPECT_EQ(merged.min(), serial.min());
    EXPECT_EQ(merged.max(), serial.max());
    EXPECT_EQ(merged.sum(), serial.sum());
    EXPECT_EQ(merged.percentile(50), serial.percentile(50));
    EXPECT_EQ(merged.percentile(99), serial.percentile(99));
  }
}

TEST(AccumulatorMerge, EmptyIsAnIdentity) {
  Accumulator a;
  a.add(3.0);
  a.add(5.0);
  const double mean = a.mean(), sd = a.stddev();
  a.merge(Accumulator());  // right identity
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  EXPECT_EQ(a.stddev(), sd);
  Accumulator b;
  b.merge(a);  // left identity
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
  EXPECT_EQ(b.stddev(), sd);
}

TEST(AccumulatorCap, BoundsRetainedSamplesButKeepsMomentsExact) {
  Accumulator capped(10);
  Accumulator exact;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform01() * 100;
    capped.add(x);
    exact.add(x);
  }
  EXPECT_EQ(capped.samples().size(), 10u);
  EXPECT_FALSE(capped.retains_all_samples());
  EXPECT_EQ(capped.count(), 200u);
  EXPECT_DOUBLE_EQ(capped.mean(), exact.mean());
  EXPECT_DOUBLE_EQ(capped.stddev(), exact.stddev());
  EXPECT_EQ(capped.min(), exact.min());
  EXPECT_EQ(capped.max(), exact.max());
}

TEST(AccumulatorCap, CappedMergeKeepsMomentsExact) {
  // Once the cap discards samples, merge falls back to Chan's formula:
  // moments must still match the serial run to floating-point accuracy.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform01() * 50 - 25);

  Accumulator serial;
  for (const double x : xs) serial.add(x);

  Accumulator left(8), right(8);
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), serial.count());
  EXPECT_NEAR(left.mean(), serial.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), serial.stddev(), 1e-9);
  EXPECT_EQ(left.min(), serial.min());
  EXPECT_EQ(left.max(), serial.max());
  EXPECT_LE(left.samples().size(), 8u);
}

// --- RepeatedResult monoid ---------------------------------------------------

FaultScenario quick_scenario() {
  FaultScenario scenario;
  scenario.warmup = 300;
  scenario.burst = 6;
  scenario.observation = 2500;
  scenario.drain = 2000;
  return scenario;
}

HarnessConfig quick_config(std::uint64_t seed) {
  HarnessConfig config;
  config.n = 3;
  config.wrapped = true;
  config.client.think_mean = 30;
  config.client.eat_mean = 5;
  config.seed = seed;
  return config;
}

TEST(RepeatedResult, MergeEqualsSequentialAdds) {
  std::vector<ExperimentResult> results;
  for (std::uint64_t s = 0; s < 6; ++s)
    results.push_back(
        run_fault_experiment(quick_config(8800 + s), quick_scenario()));

  RepeatedResult serial;
  for (const ExperimentResult& r : results) serial.add(r);

  RepeatedResult left, right;
  for (std::size_t i = 0; i < results.size(); ++i)
    (i < 3 ? left : right).add(results[i]);
  left.merge(right);

  EXPECT_EQ(left.trials, serial.trials);
  EXPECT_EQ(left.stabilized, serial.stabilized);
  EXPECT_EQ(left.starved, serial.starved);
  EXPECT_EQ(left.latency.mean(), serial.latency.mean());
  EXPECT_EQ(left.latency.stddev(), serial.latency.stddev());
  EXPECT_EQ(left.total_messages.mean(), serial.total_messages.mean());
  EXPECT_EQ(left.events.sum(), serial.events.sum());

  RepeatedResult identity;
  identity.merge(serial);
  EXPECT_EQ(identity.trials, serial.trials);
  EXPECT_EQ(identity.latency.mean(), serial.latency.mean());
}

// --- Engine determinism across jobs ------------------------------------------

SpecGrid small_grid() {
  SpecGrid grid;
  grid.add("burst", quick_config(100), quick_scenario(), 8);
  FaultScenario quiet = quick_scenario();
  quiet.burst = 0;
  grid.add("quiet", quick_config(200), quiet, 4);
  return grid;
}

TEST(ExperimentEngine, ResultsIdenticalForAnyJobsCount) {
  const GridResult serial =
      ExperimentEngine(EngineOptions{.jobs = 1}).run(small_grid());
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    const GridResult parallel =
        ExperimentEngine(EngineOptions{.jobs = jobs}).run(small_grid());
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
      const RepeatedResult& a = serial.cells[c].result;
      const RepeatedResult& b = parallel.cells[c].result;
      EXPECT_EQ(a.trials, b.trials);
      EXPECT_EQ(a.stabilized, b.stabilized);
      // Bitwise equality of derived statistics, not approximate.
      EXPECT_EQ(a.latency.mean(), b.latency.mean());
      EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
      EXPECT_EQ(a.latency.percentile(99), b.latency.percentile(99));
      EXPECT_EQ(a.total_messages.sum(), b.total_messages.sum());
      EXPECT_EQ(a.cs_entries.mean(), b.cs_entries.mean());
      EXPECT_EQ(a.events.sum(), b.events.sum());
    }
  }
}

TEST(ExperimentEngine, JsonByteIdenticalAcrossJobsModuloVolatileLines) {
  // Satellite guarantee: the whole serialized artifact — every digit of
  // every statistic — matches between --jobs 1 and --jobs 8; only lines
  // carrying wall-clock time or the jobs count may differ.
  const GridResult serial =
      ExperimentEngine(EngineOptions{.jobs = 1}).run(small_grid());
  const GridResult parallel =
      ExperimentEngine(EngineOptions{.jobs = 8}).run(small_grid());
  const std::string a =
      report::strip_volatile_lines(grid_to_json("engine_smoke", serial).dump());
  const std::string b = report::strip_volatile_lines(
      grid_to_json("engine_smoke", parallel).dump());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"cells\""), std::string::npos);
  // The stripped form really dropped the volatile fields...
  EXPECT_EQ(a.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(a.find("\"jobs\""), std::string::npos);
  EXPECT_EQ(a.find("observe_ns_per_event"), std::string::npos);
  EXPECT_EQ(a.find("events_per_sec"), std::string::npos);
  // ...which ARE present in the full dump.
  EXPECT_NE(grid_to_json("engine_smoke", serial).dump().find("wall_seconds"),
            std::string::npos);
}

TEST(ExperimentEngine, MatchesDirectSerialLoop) {
  // The engine's one-cell result equals a hand-written serial loop over
  // consecutive seeds — the refactor changed the plumbing, not the numbers.
  RepeatedResult loop;
  for (std::uint64_t s = 0; s < 5; ++s)
    loop.add(run_fault_experiment(quick_config(100 + s), quick_scenario()));

  const RepeatedResult engine =
      repeat_fault_experiment(quick_config(100), quick_scenario(), 5,
                              /*jobs=*/4);
  EXPECT_EQ(engine.trials, loop.trials);
  EXPECT_EQ(engine.stabilized, loop.stabilized);
  EXPECT_EQ(engine.latency.mean(), loop.latency.mean());
  EXPECT_EQ(engine.latency.stddev(), loop.latency.stddev());
  EXPECT_EQ(engine.total_messages.sum(), loop.total_messages.sum());
  EXPECT_EQ(engine.events.sum(), loop.events.sum());
}

TEST(ExperimentEngine, SampleCapBoundsEngineMemory) {
  SpecGrid grid;
  grid.add("capped", quick_config(300), quick_scenario(), 12);
  const GridResult result =
      ExperimentEngine(EngineOptions{.jobs = 2, .sample_cap = 4}).run(grid);
  const RepeatedResult& r = result.cell("capped").result;
  EXPECT_EQ(r.trials, 12u);
  EXPECT_EQ(r.cs_entries.count(), 12u);
  EXPECT_LE(r.cs_entries.samples().size(), 4u);
}

TEST(ExperimentEngine, CustomTrialCallableRuns) {
  RunSpec spec;
  spec.name = "custom";
  spec.config = quick_config(900);
  spec.scenario = quick_scenario();
  spec.trials = 4;
  // Thread-safe custom trial: derives everything from its arguments.
  spec.trial = [](const HarnessConfig& config, const FaultScenario&) {
    ExperimentResult r;
    r.report.stabilized = true;
    r.report.faults_injected = true;
    r.report.latency = static_cast<SimTime>(config.seed);
    return r;
  };
  const CellResult cell =
      ExperimentEngine(EngineOptions{.jobs = 2}).run_cell(spec);
  EXPECT_EQ(cell.result.trials, 4u);
  EXPECT_EQ(cell.result.stabilized, 4u);
  // Seeds 900..903 in seed order -> mean 901.5 exactly.
  EXPECT_EQ(cell.result.latency.mean(), 901.5);
  EXPECT_EQ(cell.base_seed, 900u);
}

// --- SpecGrid ----------------------------------------------------------------

TEST(SpecGrid, KeepsInsertionOrderAndLookup) {
  SpecGrid grid;
  grid.add("b", quick_config(1), quick_scenario(), 2);
  grid.add("a", quick_config(2), quick_scenario(), 3);
  EXPECT_EQ(grid.cells().size(), 2u);
  EXPECT_EQ(grid.cells()[0].name, "b");
  EXPECT_EQ(grid.cells()[1].name, "a");
  EXPECT_EQ(grid.total_trials(), 5u);

  const GridResult result =
      ExperimentEngine(EngineOptions{.jobs = 1}).run(grid);
  EXPECT_EQ(result.cells[0].name, "b");  // cell order preserved
  EXPECT_EQ(result.cell("a").result.trials, 3u);
  EXPECT_EQ(result.cell("b").result.trials, 2u);
}

// --- config digest -----------------------------------------------------------

TEST(ConfigDigest, StableAndSensitive) {
  const HarnessConfig base = quick_config(1);
  const std::string digest = config_digest(base);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(config_digest(base), digest);  // deterministic

  // Seed is deliberately NOT part of the digest (recorded separately).
  HarnessConfig reseeded = base;
  reseeded.seed = 999;
  EXPECT_EQ(config_digest(reseeded), digest);

  // Every behaviour-relevant knob must move the digest.
  HarnessConfig n = base;
  n.n = 7;
  EXPECT_NE(config_digest(n), digest);
  HarnessConfig algo = base;
  algo.algorithm = Algorithm::kLamport;
  EXPECT_NE(config_digest(algo), digest);
  HarnessConfig bare = base;
  bare.wrapped = false;
  EXPECT_NE(config_digest(bare), digest);
  HarnessConfig period = base;
  period.wrapper.resend_period = 999;
  EXPECT_NE(config_digest(period), digest);
  HarnessConfig mixed = base;
  mixed.per_process_algorithms = {Algorithm::kLamport, Algorithm::kLamport,
                                  Algorithm::kLamport};
  EXPECT_NE(config_digest(mixed), digest);
}

// --- Report layer ------------------------------------------------------------

TEST(Report, JsonPreservesKeyOrderAndRoundTripsDoubles) {
  report::Json doc = report::Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 0.1;
  doc["nested"] = report::Json::object();
  doc["nested"]["x"] = true;
  const std::string text = doc.dump(0);
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  EXPECT_NE(text.find("0.1"), std::string::npos);  // shortest round-trip
  EXPECT_EQ(text, "{\"zebra\":1,\"alpha\":0.1,\"nested\":{\"x\":true}}");
}

TEST(Report, BenchNameAndDefaultPath) {
  EXPECT_EQ(report::bench_name_from_program(
                "/path/to/build/bench/bench_stabilization_time"),
            "stabilization_time");
  EXPECT_EQ(report::bench_name_from_program("explorer"), "explorer");
  EXPECT_EQ(report::default_bench_json_path("bench/bench_throughput"),
            "BENCH_throughput.json");
}

TEST(Report, StripVolatileLinesDropsOnlyVolatileKeys) {
  const std::string pretty =
      "{\n  \"jobs\": 8,\n  \"mean\": 3.5,\n  \"wall_seconds\": 1.2,\n"
      "  \"observe_ns_per_event\": 41.5,\n  \"events_per_sec\": 1e6,\n"
      "  \"count\": 7\n}\n";
  const std::string stripped = report::strip_volatile_lines(pretty);
  EXPECT_EQ(stripped.find("jobs"), std::string::npos);
  EXPECT_EQ(stripped.find("wall"), std::string::npos);
  EXPECT_EQ(stripped.find("observe_ns_per_event"), std::string::npos);
  EXPECT_EQ(stripped.find("events_per_sec"), std::string::npos);
  EXPECT_NE(stripped.find("mean"), std::string::npos);
  EXPECT_NE(stripped.find("count"), std::string::npos);
}

}  // namespace
}  // namespace graybox::core
