// The level-1 (intra-process) wrapper: P1-P3 repairs at the unit level,
// provable silence in fault-free runs, tier selection through
// HarnessConfig (level1 / per_process_tiers), composition with the
// level-2 W', and bus attribution of corrections to the right tier.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/harness.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "wrapper/local_wrapper.hpp"

namespace graybox::wrapper {
namespace {

class LocalWrapperTest : public ::testing::Test {
 protected:
  LocalWrapperTest()
      : net(sched, 2, net::DelayModel::fixed(1), Rng(5)),
        proc(0, net),
        peer(1, net),
        wrapper(sched, proc) {
    net.set_handler(0, [this](const net::Message& m) { proc.on_message(m); });
    net.set_handler(1, [this](const net::Message& m) { peer.on_message(m); });
  }

  sim::Scheduler sched;
  net::Network net;
  me::RicartAgrawala proc;
  me::RicartAgrawala peer;
  LocalWrapper wrapper;
};

TEST_F(LocalWrapperTest, CleanStatesPassAllPredicates) {
  wrapper.evaluate();  // initial state: thinking, REQ glued
  proc.request_cs();
  wrapper.evaluate();  // genuine request: own pid, witnessed by own clock
  sched.run_all();
  wrapper.evaluate();  // eating
  proc.release_cs();
  wrapper.evaluate();  // thinking again
  EXPECT_EQ(wrapper.corrections(), 0u);
}

TEST_F(LocalWrapperTest, P1RepairsThinkingReqDrift) {
  ASSERT_TRUE(proc.thinking());
  proc.fault_set_req(clk::Timestamp{99, 0});
  wrapper.evaluate();
  EXPECT_EQ(wrapper.corrections(), 1u);
  EXPECT_TRUE(proc.thinking());
  EXPECT_EQ(proc.req(), proc.clock().now());  // REQ re-glued to ts.j
}

TEST_F(LocalWrapperTest, P2AbandonsAForeignRequest) {
  proc.fault_set_state(me::TmeState::kHungry);
  proc.fault_set_req(clk::Timestamp{3, 1});  // pid 1: not ours
  wrapper.evaluate();
  EXPECT_EQ(wrapper.corrections(), 1u);
  // The genuine request is unrecoverable locally: reset to thinking, REQ
  // glued, and the client re-requests on its next poll.
  EXPECT_TRUE(proc.thinking());
  EXPECT_EQ(proc.req(), proc.clock().now());
}

TEST_F(LocalWrapperTest, P3AbandonsARequestAboveTheClock) {
  proc.fault_set_state(me::TmeState::kHungry);
  proc.fault_set_req(clk::Timestamp{100000, 0});  // never witnessed
  wrapper.evaluate();
  EXPECT_EQ(wrapper.corrections(), 1u);
  EXPECT_TRUE(proc.thinking());
}

TEST_F(LocalWrapperTest, TimerDrivesChecksOncePerPeriod) {
  wrapper.start();
  EXPECT_TRUE(wrapper.running());
  sched.run_for(4 * wrapper.check_period());
  EXPECT_EQ(wrapper.checks(), 4u);
  EXPECT_EQ(wrapper.corrections(), 0u);  // silent on clean states
  wrapper.stop();
  EXPECT_FALSE(wrapper.running());
}

}  // namespace
}  // namespace graybox::wrapper

namespace graybox::core {
namespace {

HarnessConfig level1_config(std::uint64_t seed) {
  HarnessConfig config;
  config.n = 4;
  config.wrapped = false;
  config.level1 = true;
  config.client.think_mean = 35;
  config.client.eat_mean = 7;
  config.seed = seed;
  return config;
}

TEST(Level1Harness, FaultFreeRunsAreProvablySilent) {
  // All three predicates hold in every reachable fault-free state, so a
  // long run must apply zero corrections — for both wrapper tiers on.
  HarnessConfig config = level1_config(1);
  config.wrapped = true;
  SystemHarness h(config);
  h.start();
  h.run_for(8000);
  h.drain(4000);
  EXPECT_GT(h.stats().cs_entries, 20u);
  EXPECT_EQ(h.stats().level1_corrections, 0u);
}

TEST(Level1Harness, RepairsAScriptedCorruptionWithinOnePeriod) {
  HarnessConfig config = level1_config(2);
  config.client.wants_cs = false;  // keep the run quiet: scripted only
  SystemHarness h(config);
  h.start();
  h.run_for(100);
  h.process(0).fault_set_state(me::TmeState::kHungry);
  h.process(0).fault_set_req(clk::Timestamp{7, 3});  // foreign request
  h.run_for(2 * config.local_wrapper.check_period);
  EXPECT_EQ(h.stats().level1_corrections, 1u);
  EXPECT_TRUE(h.process(0).thinking());
  EXPECT_EQ(h.local_wrapper(0)->corrections(), 1u);
}

TEST(Level1Harness, PerProcessTiersSelectWrappersIndividually) {
  HarnessConfig config = level1_config(3);
  config.per_process_tiers = {kTierLevel2, kTierLevel1,
                              kTierLevel1 | kTierLevel2, 0};
  SystemHarness h(config);
  EXPECT_NE(h.wrapper(0), nullptr);
  EXPECT_EQ(h.local_wrapper(0), nullptr);
  EXPECT_EQ(h.wrapper(1), nullptr);
  EXPECT_NE(h.local_wrapper(1), nullptr);
  EXPECT_NE(h.wrapper(2), nullptr);
  EXPECT_NE(h.local_wrapper(2), nullptr);
  EXPECT_EQ(h.wrapper(3), nullptr);
  EXPECT_EQ(h.local_wrapper(3), nullptr);

  // The mixed-tier system still runs and serves.
  h.start();
  h.run_for(4000);
  h.drain(3000);
  EXPECT_GT(h.stats().cs_entries, 0u);
}

TEST(Level1Harness, ComposesWithLevel2UnderProcessCorruption) {
  // Both tiers on, state-corruption burst: the system stabilizes and the
  // level-1 tier finds work (corrupt REQ fields are exactly its domain).
  HarnessConfig config = level1_config(0);
  config.wrapped = true;
  FaultScenario scenario;
  scenario.warmup = 600;
  scenario.burst = 12;
  scenario.mix = net::FaultMix::only(net::FaultKind::kProcessCorrupt);
  scenario.observation = 7000;
  scenario.drain = 5000;

  RepeatedResult aggregate;
  for (std::uint64_t seed = 70; seed < 78; ++seed) {
    HarnessConfig c = config;
    c.seed = seed;
    aggregate.add(run_fault_experiment(c, scenario));
  }
  EXPECT_TRUE(aggregate.all_stabilized())
      << aggregate.stabilized << "/" << aggregate.trials;
  std::uint64_t corrections = 0;
  for (std::uint64_t seed = 70; seed < 78; ++seed) {
    HarnessConfig c = config;
    c.seed = seed;
    corrections += run_fault_experiment(c, scenario).stats.level1_corrections;
  }
  EXPECT_GT(corrections, 0u)
      << "no corruption in 8 bursts tripped a level-1 predicate";
}

TEST(Level1Harness, CorrectionsAreAttributedOnTheBus) {
  HarnessConfig config = level1_config(5);
  config.client.wants_cs = false;
  config.trace_capacity = 256;
  SystemHarness h(config);
  h.start();
  h.run_for(100);
  h.process(2).fault_set_state(me::TmeState::kHungry);
  h.process(2).fault_set_req(clk::Timestamp{9, 0});  // foreign request
  h.run_for(2 * config.local_wrapper.check_period);

  bool found = false;
  for (std::size_t i = 0; i < h.events().size(); ++i) {
    const obs::Event& e = h.events().event(i);
    if (e.kind != obs::EventKind::kLocalCorrection) continue;
    found = true;
    EXPECT_EQ(e.pid, 2u);
    const std::string text = h.events().render(e);
    EXPECT_NE(text.find("local-wrapper 2"), std::string::npos) << text;
    EXPECT_NE(text.find("foreign-req"), std::string::npos) << text;
  }
  EXPECT_TRUE(found) << "no kLocalCorrection event retained on the bus";
}

}  // namespace
}  // namespace graybox::core
