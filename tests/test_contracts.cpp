// Contract-violation death tests: programming errors (as opposed to
// simulated faults) must abort loudly, and the umbrella header must
// compile standalone.
#include <gtest/gtest.h>

#include "graybox.hpp"

namespace graybox {
namespace {

using CoreContracts = ::testing::Test;

TEST(Contracts, SchedulerRejectsPastScheduling) {
  EXPECT_DEATH(
      {
        sim::Scheduler sched;
        sched.schedule_at(10, [] {});
        sched.run_until(10);
        sched.schedule_at(5, [] {});  // in the past
      },
      "precondition");
}

TEST(Contracts, SchedulerRejectsNullEvent) {
  EXPECT_DEATH(
      {
        sim::Scheduler sched;
        sched.schedule_at(1, sim::Scheduler::EventFn{});
      },
      "precondition");
}

TEST(Contracts, RngRejectsInvertedBounds) {
  EXPECT_DEATH(
      {
        Rng rng(1);
        (void)rng.uniform(10, 5);
      },
      "precondition");
}

TEST(Contracts, NetworkRejectsSelfChannel) {
  EXPECT_DEATH(
      {
        sim::Scheduler sched;
        net::Network net(sched, 2, net::DelayModel::fixed(1), Rng(1));
        (void)net.channel(1, 1);
      },
      "precondition");
}

TEST(Contracts, BitsetRejectsOutOfRange) {
  EXPECT_DEATH(
      {
        algebra::Bitset bs(4);
        (void)bs.test(4);
      },
      "precondition");
}

TEST(Contracts, SystemRejectsForeignStates) {
  EXPECT_DEATH(
      {
        algebra::System sys(3);
        sys.add_transition(0, 3);
      },
      "precondition");
}

TEST(Contracts, ChecksRejectMismatchedStateSpaces) {
  EXPECT_DEATH(
      {
        algebra::System a(2);
        algebra::System c(3);
        a.add_transition(0, 0);
        a.add_transition(1, 1);
        a.set_initial(0);
        c.ensure_total();
        c.set_initial(0);
        (void)algebra::implements_init(c, a);
      },
      "precondition");
}

TEST(Contracts, HarnessRejectsMismatchedAlgorithmVector) {
  // Fails fast in the constructor — never silently falls back to
  // `algorithm` for the unnamed processes.
  EXPECT_DEATH(
      {
        core::HarnessConfig config;
        config.n = 3;
        config.per_process_algorithms = {core::Algorithm::kLamport};
        core::SystemHarness h(config);
      },
      "precondition");
}

TEST(Contracts, HarnessRejectsOversizedAlgorithmVector) {
  // Too many entries is just as much a misconfiguration as too few.
  EXPECT_DEATH(
      {
        core::HarnessConfig config;
        config.n = 2;
        config.per_process_algorithms.assign(3, core::Algorithm::kLamport);
        core::SystemHarness h(config);
      },
      "precondition");
}

TEST(Contracts, HarnessAcceptsExactOrEmptyAlgorithmVector) {
  core::HarnessConfig config;
  config.n = 2;
  core::SystemHarness homogeneous(config);  // empty vector: all `algorithm`
  EXPECT_EQ(homogeneous.process(0).algorithm(),
            homogeneous.process(1).algorithm());

  config.per_process_algorithms = {core::Algorithm::kRicartAgrawala,
                                   core::Algorithm::kLamport};
  core::SystemHarness mixed(config);  // size == n: honoured per process
  EXPECT_EQ(mixed.process(1).algorithm(), "lamport");
}

TEST(Contracts, ProcessRejectsOutOfRangePeerQueries) {
  EXPECT_DEATH(
      {
        sim::Scheduler sched;
        net::Network net(sched, 2, net::DelayModel::fixed(1), Rng(1));
        me::RicartAgrawala p(0, net);
        (void)p.knows_earlier(7);
      },
      "precondition");
}

TEST(UmbrellaHeader, ExposesEveryLayer) {
  // Touch one symbol per layer so a missing include in graybox.hpp fails
  // this test at compile time.
  (void)sizeof(Rng);
  (void)sizeof(sim::Scheduler);
  (void)sizeof(clk::Timestamp);
  (void)sizeof(net::Message);
  (void)sizeof(algebra::System);
  (void)sizeof(spec::Violation);
  (void)sizeof(me::RicartAgrawala);
  (void)sizeof(lspec::GlobalSnapshot);
  (void)sizeof(wrapper::GrayboxWrapper);
  (void)sizeof(core::SystemHarness);
  SUCCEED();
}

}  // namespace
}  // namespace graybox
