// Unit tests for the polling client: Client Spec everywhere — flow driving,
// transient eating from any state, and recovery of corrupted processes via
// polling.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/client.hpp"
#include "me/ricart_agrawala.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::me {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2;

  ClientTest() : net(sched, kN, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < kN; ++pid) {
      procs.push_back(std::make_unique<RicartAgrawala>(pid, net));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }

  Client& make_client(ProcessId pid, ClientConfig config, std::uint64_t seed) {
    clients.push_back(
        std::make_unique<Client>(sched, *procs[pid], config, Rng(seed)));
    return *clients.back();
  }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<RicartAgrawala>> procs;
  std::vector<std::unique_ptr<Client>> clients;
};

TEST_F(ClientTest, DrivesFullCycle) {
  ClientConfig config;
  config.think_mean = 20;
  config.eat_mean = 5;
  Client& c0 = make_client(0, config, 1);
  Client& c1 = make_client(1, config, 2);
  c0.start();
  c1.start();
  sched.run_until(5000);
  EXPECT_GT(c0.requests_issued(), 10u);
  EXPECT_GT(c1.requests_issued(), 10u);
  EXPECT_GT(procs[0]->cs_entries(), 10u);
  EXPECT_GT(procs[1]->cs_entries(), 10u);
}

TEST_F(ClientTest, ReleasesFollowEntries) {
  ClientConfig config;
  config.think_mean = 10;
  config.eat_mean = 3;
  Client& c = make_client(0, config, 3);
  c.start();
  sched.run_until(2000);
  // Releases trail requests by at most the one in-flight CS.
  EXPECT_GE(c.releases_issued() + 1, c.requests_issued());
  EXPECT_GT(c.releases_issued(), 0u);
}

TEST_F(ClientTest, PassiveClientNeverRequests) {
  ClientConfig config;
  config.wants_cs = false;
  Client& c = make_client(0, config, 4);
  c.start();
  sched.run_until(1000);
  EXPECT_EQ(c.requests_issued(), 0u);
  EXPECT_TRUE(procs[0]->thinking());
}

TEST_F(ClientTest, StopRequestingDrains) {
  ClientConfig config;
  config.think_mean = 10;
  config.eat_mean = 2;
  Client& c0 = make_client(0, config, 5);
  Client& c1 = make_client(1, config, 6);
  c0.start();
  c1.start();
  sched.run_until(500);
  c0.stop_requesting();
  c1.stop_requesting();
  const auto req0 = c0.requests_issued();
  sched.run_until(2000);
  EXPECT_EQ(c0.requests_issued(), req0);
  // Everything settles back to thinking.
  EXPECT_TRUE(procs[0]->thinking());
  EXPECT_TRUE(procs[1]->thinking());
}

TEST_F(ClientTest, SpuriousEatingIsReleased) {
  // CS Spec everywhere: a corruption that fakes e.j must still lead to a
  // release (eating is transient from ANY state).
  ClientConfig config;
  config.wants_cs = false;  // isolate the release path
  config.eat_mean = 5;
  Client& c = make_client(0, config, 7);
  c.start();
  sched.run_until(50);
  procs[0]->fault_set_state(TmeState::kEating);
  sched.run_until(200);
  EXPECT_TRUE(procs[0]->thinking());
  EXPECT_EQ(c.releases_issued(), 1u);
}

TEST_F(ClientTest, CorruptedHungryIsPolledIntoProgress) {
  // A corruption that plants "hungry with favorable views" needs no
  // message to make progress — the client's poll must unblock it.
  ClientConfig config;
  config.wants_cs = false;
  Client& c = make_client(0, config, 8);
  c.start();
  procs[0]->fault_set_state(TmeState::kHungry);
  procs[0]->fault_set_req(clk::Timestamp{1, 0});
  procs[0]->fault_set_view(1, clk::Timestamp{100, 1});
  sched.run_until(100);
  // Entered via poll, then released by the client (eating transient).
  EXPECT_TRUE(procs[0]->thinking());
  EXPECT_EQ(procs[0]->cs_entries(), 1u);
}

TEST_F(ClientTest, StopHaltsPolling) {
  ClientConfig config;
  config.think_mean = 5;
  Client& c = make_client(0, config, 9);
  c.start();
  sched.run_until(100);
  c.stop();
  const auto requests = c.requests_issued();
  sched.run_until(1000);
  EXPECT_EQ(c.requests_issued(), requests);
}

TEST_F(ClientTest, ResumeRequestingAfterDrain) {
  ClientConfig config;
  config.think_mean = 10;
  Client& c = make_client(0, config, 10);
  c.start();
  c.stop_requesting();
  sched.run_until(500);
  EXPECT_EQ(c.requests_issued(), 0u);
  c.resume_requesting();
  sched.run_until(1000);
  EXPECT_GT(c.requests_issued(), 0u);
}

}  // namespace
}  // namespace graybox::me
