// Unit tests for src/common: RNG determinism and distributions, statistics
// accumulators, the table printer, and the CLI flag parser.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace graybox {
namespace {

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversFullRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanApproximatesParameter) {
  Rng rng(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.exponential(50.0));
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.exponential(0.0), 0u);
}

TEST(Rng, IndexInRange) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(13), 13u);
}

TEST(Rng, PickReturnsElementOfVector) {
  Rng rng(13);
  const std::vector<int> v{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_NE(std::find(v.begin(), v.end(), x), v.end());
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(14);
  Rng child = a.split();
  // The child stream should not reproduce the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// --- Accumulator -------------------------------------------------------

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.percentile(50), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(7.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
  EXPECT_DOUBLE_EQ(acc.min(), 7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MeanAndStddev) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample stddev of this classic dataset: sqrt(32/7).
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, MinMaxSum) {
  Accumulator acc;
  for (double x : {3.0, -1.0, 10.0, 5.5}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 17.5);
}

TEST(Accumulator, PercentileNearestRank) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(i);
  EXPECT_DOUBLE_EQ(acc.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(acc.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(acc.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(acc.percentile(1), 1.0);
}

TEST(Accumulator, MedianOfUnsortedInput) {
  Accumulator acc;
  for (double x : {9.0, 1.0, 5.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.median(), 5.0);
}

TEST(Accumulator, MeanPmStddevFormatting) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_EQ(mean_pm_stddev(acc, 1), "2.0 ± 1.4");
}

// --- Table ---------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string out = t.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines (except the rule) must start flush-left with the cell text.
  EXPECT_NE(out.find("longer-name  23456"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, RowConvenienceFormatsNumbers) {
  Table t({"n", "flag", "text"});
  t.row(42, true, "hello");
  const std::string out = t.to_string();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
}

TEST(Table, HandlesUtf8WidthInStatsCells) {
  Table t({"metric", "value"});
  t.add_row({"latency", "12.3 ± 0.4"});
  t.add_row({"count", "7"});
  const std::string out = t.to_string();
  // The ± must not break alignment: both data lines have the same prefix
  // width before the value column.
  EXPECT_NE(out.find("12.3 ± 0.4"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvPlainCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "name,note\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

// --- Flags ---------------------------------------------------------------

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--seed=42"};
  Flags flags(2, argv, {{"seed", "RNG seed"}});
  EXPECT_TRUE(flags.has("seed"));
  EXPECT_EQ(flags.get_int("seed", 0), 42);
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--trials", "17"};
  Flags flags(3, argv, {{"trials", ""}});
  EXPECT_EQ(flags.get_int("trials", 0), 17);
}

TEST(Flags, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags flags(2, argv, {{"verbose", ""}});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv, {{"n", ""}, {"rate", ""}, {"on", ""}});
  EXPECT_EQ(flags.get_int("n", 5), 5);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.25), 0.25);
  EXPECT_FALSE(flags.get_bool("on", false));
  EXPECT_EQ(flags.get("n", "dflt"), "dflt");
}

TEST(Flags, BooleanFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  Flags flags(5, argv, {{"a", ""}, {"b", ""}, {"c", ""}, {"d", ""}});
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_TRUE(flags.get_bool("d", false));
}

TEST(Flags, IgnoresBenchmarkFlags) {
  const char* argv[] = {"prog", "--benchmark_filter=all", "--n=3"};
  Flags flags(3, argv, {{"n", ""}});
  EXPECT_EQ(flags.get_int("n", 0), 3);
}

TEST(Flags, DoubleParsing) {
  const char* argv[] = {"prog", "--rate=0.125"};
  Flags flags(2, argv, {{"rate", ""}});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0), 0.125);
}

}  // namespace
}  // namespace graybox
