// Steady-state allocation accounting for the simulation core.
//
// The hot-path overhaul's contract is not "fewer allocations" but *zero*:
// once the scheduler's slot pool, wheel buckets, and the channels' message
// rings have grown to their working size, executing events, re-arming
// periodic timers, and streaming message traffic must never touch the heap.
// This binary replaces global operator new with a counting shim and asserts
// an exact zero over measured windows that repeat the warm-up's access
// pattern. Any regression — a callback capture outgrowing the inline
// buffer, a clock falling off the inline path, a container silently
// reallocating per event — fails loudly here rather than showing up as a
// few percent in a benchmark.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "clock/vector_clock.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace {
std::uint64_t g_allocs = 0;  // single-threaded test binary
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace graybox {
namespace {

// Allocations performed by `fn`.
template <class Fn>
std::uint64_t allocations(Fn&& fn) {
  const std::uint64_t before = g_allocs;
  fn();
  return g_allocs - before;
}

// The wheel lazily grows each of its 1024 per-tick bucket vectors on first
// use, so a warm-up must visit *every* tick residue with at least the
// measured window's per-bucket load before steady state is reached.
void warm_up_scheduler(graybox::sim::Scheduler& sched) {
  for (int rep = 0; rep < 2; ++rep) {
    for (int off = 0; off < 1200; ++off)
      for (int k = 0; k < 8; ++k) sched.schedule_after(off, [] {});
    for (int i = 0; i < 512; ++i)
      sched.schedule_after(5'000 + i % 100, [] {});
    sched.run_all();
  }
}

TEST(AllocFree, SchedulerScheduleExecuteSteadyState) {
  sim::Scheduler sched;
  warm_up_scheduler(sched);

  const auto n = allocations([&] {
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 2048; ++i)
        sched.schedule_after(i % 900, [] {});
      for (int i = 0; i < 256; ++i)
        sched.schedule_after(5'000 + i % 100, [] {});
      sched.run_all();
    }
  });
  EXPECT_EQ(n, 0u) << "scheduling/executing events allocated";
}

TEST(AllocFree, SchedulerCancelSteadyState) {
  sim::Scheduler sched;
  std::vector<sim::EventId> ids;
  ids.reserve(4096);
  for (int round = 0; round < 2; ++round) {
    ids.clear();
    for (int i = 0; i < 2048; ++i)
      ids.push_back(sched.schedule_after(100 + i % 64, [] {}));
    for (auto id : ids) sched.cancel(id);
    sched.run_all();
  }

  const auto n = allocations([&] {
    ids.clear();
    for (int i = 0; i < 2048; ++i)
      ids.push_back(sched.schedule_after(100 + i % 64, [] {}));
    for (auto id : ids) sched.cancel(id);
    sched.run_all();
  });
  EXPECT_EQ(n, 0u) << "cancel path allocated";
}

TEST(AllocFree, PeriodicTimerRearms) {
  sim::Scheduler sched;
  std::uint64_t ticks = 0;
  sim::PeriodicTimer timer(sched, 7, [&ticks] { ++ticks; });
  timer.start();
  // 7 and 1024 are coprime, so 1024 periods visit every wheel bucket once;
  // run past that so each bucket's vector exists before measuring.
  sched.run_until(8'000);

  const auto n = allocations([&] { sched.run_until(708'000); });
  timer.stop();
  EXPECT_EQ(n, 0u) << "timer re-arms allocated";
  EXPECT_EQ(ticks, 708'000u / 7);
}

TEST(AllocFree, NetworkMessageTrafficSteadyState) {
  sim::Scheduler sched;
  // Fixed delay keeps the warm-up and measured windows byte-for-byte the
  // same access pattern, so every capacity high-water mark is reached in
  // warm-up and the measured window cannot see a first-time bucket load.
  net::Network net(sched, 12, net::DelayModel::fixed(3), Rng(3));
  std::uint64_t received = 0;
  for (ProcessId pid = 0; pid < 12; ++pid)
    net.set_handler(pid, [&received](const net::Message&) { ++received; });

  auto burst = [&](int count) {
    std::uint64_t counter = 0;
    for (int i = 0; i < count; ++i) {
      const ProcessId from = static_cast<ProcessId>(i % 12);
      const ProcessId to = static_cast<ProcessId>((i + 1 + i % 11) % 12);
      if (from == to) continue;
      net.send(from, to, net::MsgType::kRequest,
               clk::Timestamp{++counter, from}, false);
      if (i % 16 == 15) sched.run_all();
    }
    sched.run_all();
  };

  // Each 16-send chunk lands on one wheel tick and advances time by the
  // fixed delay (3, coprime with 1024), so ~1100 chunks visit every bucket
  // residue at full chunk load; rings and the slot pool warm along the way.
  burst(18'000);

  const auto n = allocations([&] { burst(4'000); });
  EXPECT_EQ(n, 0u) << "send/deliver traffic allocated";
  EXPECT_GT(received, 0u);
}

TEST(AllocFree, VectorClockInlineBoundary) {
  // Up to kInlineComponents the clock must live entirely inline; one
  // component past the boundary it must take exactly the heap fallback.
  const auto inline_allocs = allocations([&] {
    clk::VectorClock a(0, clk::VectorClock::kInlineComponents);
    clk::VectorClock b(1, clk::VectorClock::kInlineComponents);
    for (int i = 0; i < 100; ++i) {
      a.tick();
      b.witness(a);
      clk::VectorClock copy = b;
      a = copy;
    }
  });
  EXPECT_EQ(inline_allocs, 0u) << "inline-sized clocks allocated";

  const auto heap_allocs = allocations([&] {
    clk::VectorClock big(0, clk::VectorClock::kInlineComponents + 1);
    (void)big;
  });
  EXPECT_GT(heap_allocs, 0u) << "over-boundary clock should hit the heap";
}

}  // namespace
}  // namespace graybox
