// Unit tests for the discrete-event scheduler, periodic timers, and trace.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"

namespace graybox::sim {
namespace {

TEST(Scheduler, StartsAtTimeZeroIdle) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0u);
  EXPECT_TRUE(sched.idle());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, FifoAtEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    sched.schedule_at(5, [&order, i] { order.push_back(i); });
  sched.run_all();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  SimTime seen = 0;
  sched.schedule_at(100, [&] {
    sched.schedule_after(5, [&] { seen = sched.now(); });
  });
  sched.run_all();
  EXPECT_EQ(seen, 105u);
}

TEST(Scheduler, NowAdvancesDuringExecution) {
  Scheduler sched;
  SimTime t1 = 0, t2 = 0;
  sched.schedule_at(7, [&] { t1 = sched.now(); });
  sched.schedule_at(9, [&] { t2 = sched.now(); });
  sched.run_all();
  EXPECT_EQ(t1, 7u);
  EXPECT_EQ(t2, 9u);
}

TEST(Scheduler, RunUntilExecutesInclusiveAndSetsNow) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(10, [&] { ++ran; });
  sched.schedule_at(20, [&] { ++ran; });
  sched.schedule_at(21, [&] { ++ran; });
  sched.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.now(), 20u);
  sched.run_until(25);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.now(), 25u);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(10, [&] { ++ran; });
  sched.run_for(5);
  EXPECT_EQ(ran, 0);
  sched.run_for(5);
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, RunForSaturatesInsteadOfWrappingPastNever) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(40, [&] { ++ran; });
  sched.run_for(10);
  EXPECT_EQ(sched.now(), 10u);
  // now_ + kNever would wrap around to 9 and trip run_until's t >= now
  // precondition; run_for must clamp to the end of simulated time instead
  // and still execute everything pending.
  sched.run_for(kNever);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.now(), kNever);
}

TEST(Scheduler, RunForExactlyToNeverBoundary) {
  Scheduler sched;
  sched.run_for(100);
  // duration == kNever - now_ is the largest non-wrapping duration; both
  // it and anything larger land exactly on kNever.
  sched.run_for(kNever - sched.now());
  EXPECT_EQ(sched.now(), kNever);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int ran = 0;
  const EventId id = sched.schedule_at(10, [&] { ++ran; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run_all();
  EXPECT_EQ(ran, 0);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler sched;
  const EventId id = sched.schedule_at(10, [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelAfterExecutionFails) {
  Scheduler sched;
  const EventId id = sched.schedule_at(10, [] {});
  sched.run_all();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelBogusIdFails) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(0));
  EXPECT_FALSE(sched.cancel(12345));
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler sched;
  const EventId a = sched.schedule_at(10, [] {});
  sched.schedule_at(20, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_all();
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sched.schedule_after(1, chain);
  };
  sched.schedule_at(0, chain);
  sched.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), 9u);
}

TEST(Scheduler, ObserverRunsAfterEveryEvent) {
  Scheduler sched;
  std::vector<SimTime> observed;
  sched.add_observer([&](SimTime t) { observed.push_back(t); });
  sched.schedule_at(3, [] {});
  sched.schedule_at(5, [] {});
  sched.run_all();
  EXPECT_EQ(observed, (std::vector<SimTime>{3, 5}));
}

TEST(Scheduler, ObserverNotCalledForCancelled) {
  Scheduler sched;
  int observed = 0;
  sched.add_observer([&](SimTime) { ++observed; });
  const EventId id = sched.schedule_at(3, [] {});
  sched.cancel(id);
  sched.schedule_at(4, [] {});
  sched.run_all();
  EXPECT_EQ(observed, 1);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.schedule_at(i, [] {});
  sched.run_all();
  EXPECT_EQ(sched.executed(), 5u);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(1, [&] { ++ran; });
  sched.schedule_at(2, [&] { ++ran; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, TombstonesStayBoundedByLiveEvents) {
  // The re-arm pattern every wrapper timer uses: schedule a far-future
  // event, cancel it, repeat. Lazy deletion alone would accumulate one
  // tombstone per iteration forever; compaction keeps the count bounded
  // by max(live events, compaction threshold).
  Scheduler sched;
  sched.schedule_at(1'000'000, [] {});  // one live far-future event
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = sched.schedule_at(500'000, [] {});
    sched.cancel(id);
  }
  EXPECT_LT(sched.tombstones(), 128u);
  EXPECT_EQ(sched.pending(), 1u);
  // The surviving event still runs.
  int ran = 0;
  sched.schedule_at(1'000'001, [&] { ++ran; });
  sched.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched.tombstones(), 0u);
}

TEST(Scheduler, CompactionPreservesOrderAndCancellation) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] { order.push_back(1); });
  const EventId doomed = sched.schedule_at(20, [&] { order.push_back(2); });
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.cancel(doomed);
  // Force a compaction pass with churn well past the threshold.
  for (int i = 0; i < 200; ++i) sched.cancel(sched.schedule_at(40, [] {}));
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, RemoveObserverByHandle) {
  Scheduler sched;
  int a_count = 0, b_count = 0;
  const ObserverId a = sched.add_observer([&](SimTime) { ++a_count; });
  sched.add_observer([&](SimTime) { ++b_count; });
  EXPECT_EQ(sched.observer_count(), 2u);

  sched.schedule_at(1, [] {});
  sched.run_all();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 1);

  EXPECT_TRUE(sched.remove_observer(a));
  EXPECT_FALSE(sched.remove_observer(a));  // already gone
  EXPECT_EQ(sched.observer_count(), 1u);

  sched.schedule_at(2, [] {});
  sched.run_all();
  EXPECT_EQ(a_count, 1);  // no longer invoked
  EXPECT_EQ(b_count, 2);
}

TEST(Scheduler, ObserverMayRemoveItselfDuringDispatch) {
  Scheduler sched;
  int once = 0, always = 0;
  ObserverId self = 0;
  self = sched.add_observer([&](SimTime) {
    ++once;
    EXPECT_TRUE(sched.remove_observer(self));
  });
  sched.add_observer([&](SimTime) { ++always; });
  sched.schedule_at(1, [] {});
  sched.schedule_at(2, [] {});
  sched.run_all();
  EXPECT_EQ(once, 1);    // fired once, then unhooked itself mid-dispatch
  EXPECT_EQ(always, 2);  // the later slot was still dispatched both times
  EXPECT_EQ(sched.observer_count(), 1u);
}

// --- PeriodicTimer -------------------------------------------------------

TEST(PeriodicTimer, FiresEveryPeriod) {
  Scheduler sched;
  std::vector<SimTime> fires;
  PeriodicTimer timer(sched, 10, [&] { fires.push_back(sched.now()); });
  timer.start();
  sched.run_until(35);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(timer.fired(), 3u);
}

TEST(PeriodicTimer, StoppedTimerDoesNotFire) {
  Scheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, 10, [&] { ++fires; });
  timer.start();
  sched.run_until(15);
  timer.stop();
  sched.run_until(100);
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartAfterStop) {
  Scheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, 10, [&] { ++fires; });
  timer.start();
  sched.run_until(10);
  timer.stop();
  timer.start();
  sched.run_until(20);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, ZeroPeriodNormalizedToOneTick) {
  Scheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, 0, [&] { ++fires; });
  EXPECT_EQ(timer.period(), 1u);
  timer.start();
  sched.run_until(5);
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, SetPeriodRearms) {
  Scheduler sched;
  std::vector<SimTime> fires;
  PeriodicTimer timer(sched, 10, [&] { fires.push_back(sched.now()); });
  timer.start();
  sched.run_until(10);
  timer.set_period(3);
  sched.run_until(19);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 13, 16, 19}));
}

TEST(PeriodicTimer, SetPeriodInsideTickDoesNotDoubleArm) {
  // Regression: set_period called from inside the tick callback (adaptive
  // period retuning) used to arm a second tick chain — on_tick re-armed
  // unconditionally after fn_ returned — doubling the rate on every
  // retune. The in-progress tick must simply re-arm with the new period.
  Scheduler sched;
  std::vector<SimTime> fires;
  std::unique_ptr<PeriodicTimer> timer;
  timer = std::make_unique<PeriodicTimer>(sched, 10, [&] {
    fires.push_back(sched.now());
    timer->set_period(7);
  });
  timer->start();
  sched.run_until(40);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 17, 24, 31, 38}));
}

TEST(PeriodicTimer, RestartInsideTickKeepsSingleChain) {
  // stop()+start() inside the tick re-arms explicitly; on_tick must not
  // arm again on top of that.
  Scheduler sched;
  std::vector<SimTime> fires;
  std::unique_ptr<PeriodicTimer> timer;
  timer = std::make_unique<PeriodicTimer>(sched, 10, [&] {
    fires.push_back(sched.now());
    timer->stop();
    timer->start();
  });
  timer->start();
  sched.run_until(30);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30}));
}

TEST(PeriodicTimer, StartIsIdempotent) {
  Scheduler sched;
  int fires = 0;
  PeriodicTimer timer(sched, 10, [&] { ++fires; });
  timer.start();
  timer.start();
  sched.run_until(10);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimer, DestructorCancelsPendingTick) {
  Scheduler sched;
  int fires = 0;
  {
    PeriodicTimer timer(sched, 10, [&] { ++fires; });
    timer.start();
  }
  sched.run_until(100);
  EXPECT_EQ(fires, 0);
}

// --- Trace ---------------------------------------------------------------

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.record(1, "a");
  trace.record(2, "b");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.at(0).text, "a");
  EXPECT_EQ(trace.at(1).time, 2u);
}

TEST(Trace, EvictsOldestBeyondCapacity) {
  Trace trace(3);
  for (int i = 0; i < 10; ++i) trace.record(i, std::to_string(i));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.at(0).text, "7");
  EXPECT_EQ(trace.at(1).text, "8");
  EXPECT_EQ(trace.at(2).text, "9");
  EXPECT_EQ(trace.total_recorded(), 10u);
}

TEST(Trace, ZeroCapacityDropsEverything) {
  Trace trace(0);
  trace.record(1, "x");
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(Trace, DumpFormatsTail) {
  Trace trace;
  trace.record(5, "hello");
  std::ostringstream oss;
  trace.dump(oss);
  EXPECT_EQ(oss.str(), "[5] hello\n");
}

TEST(Trace, DumpLastNTruncatesToTail) {
  Trace trace;
  for (int i = 0; i < 5; ++i) trace.record(i, "r" + std::to_string(i));
  std::ostringstream oss;
  trace.dump(oss, 2);
  EXPECT_EQ(oss.str(), "[3] r3\n[4] r4\n");
}

TEST(Trace, DumpZeroPrintsNothing) {
  Trace trace;
  trace.record(1, "x");
  std::ostringstream oss;
  trace.dump(oss, 0);
  EXPECT_EQ(oss.str(), "");
}

TEST(Trace, DumpMoreThanSizePrintsEverything) {
  Trace trace(4);
  for (int i = 0; i < 3; ++i) trace.record(i, std::to_string(i));
  std::ostringstream oss;
  trace.dump(oss, 100);
  EXPECT_EQ(oss.str(), "[0] 0\n[1] 1\n[2] 2\n");
}

TEST(Trace, DumpAfterEvictionStartsAtOldestRetained) {
  Trace trace(2);
  for (int i = 0; i < 5; ++i) trace.record(i, std::to_string(i));
  std::ostringstream oss;
  trace.dump(oss);
  EXPECT_EQ(oss.str(), "[3] 3\n[4] 4\n");
}

TEST(Trace, TotalRecordedCountsEvicted) {
  Trace trace(2);
  EXPECT_EQ(trace.capacity(), 2u);
  for (int i = 0; i < 7; ++i) trace.record(i, "x");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.total_recorded(), 7u);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.record(1, "x");
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(Trace, RecordAfterClearStartsFresh) {
  Trace trace(3);
  for (int i = 0; i < 5; ++i) trace.record(i, std::to_string(i));
  trace.clear();
  trace.record(9, "fresh");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.at(0).time, 9u);
  EXPECT_EQ(trace.at(0).text, "fresh");
}

}  // namespace
}  // namespace graybox::sim
