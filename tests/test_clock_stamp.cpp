// Sparse clock stamps: golden equivalence against the dense reference.
//
// The wire format changed (net::Message carries a ClockStamp — usually a
// delta of the components changed since the channel's last genuine send —
// instead of a full VectorClock copy), but the clocks every process
// computes must not change by a single bit. Two layers of evidence:
//
//   1. Unit/fuzz tests on ClockStamp itself: a single-channel simulation
//      where the receiver folds delta/dense stamps and must track, exactly,
//      a dense-reference receiver that witnesses the sender's full clock —
//      across 2..300 components, random change patterns, and the
//      absorb_older unions the fault-repair path builds.
//   2. Dual-harness runs across the full fault matrix: the same seed with
//      reference_dense_clocks on and off must produce identical monitor
//      verdicts, stats, CS schedules, and stabilization reports. The same
//      battery pins reference_full_sweep_monitors at N=64, certifying the
//      incremental monitor paths verdict-identical under every fault kind.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "clock/clock_stamp.hpp"
#include "clock/vector_clock.hpp"
#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "net/fault_injector.hpp"

namespace graybox {
namespace {

using clk::ClockStamp;
using clk::VectorClock;

// --- ClockStamp unit behaviour --------------------------------------------

TEST(ClockStamp, EmptyDenseDeltaModes) {
  ClockStamp empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);

  VectorClock c(2, 5);
  c.tick();
  c.tick();
  ClockStamp dense = ClockStamp::dense(c);
  ASSERT_TRUE(dense.is_dense());
  EXPECT_EQ(dense.size(), 5u);
  EXPECT_EQ(dense.to_clock().component(2), 2u);

  ClockStamp delta = ClockStamp::delta(2, 5);
  ASSERT_TRUE(delta.is_delta());
  EXPECT_TRUE(delta.add_entry(2, 2));
  EXPECT_TRUE(delta.add_entry(4, 7));
  EXPECT_EQ(delta.size(), 5u);  // components spoken for, not entry count
  EXPECT_EQ(delta.entries().size(), 2u);
  const VectorClock back = delta.to_clock();
  EXPECT_EQ(back.component(2), 2u);
  EXPECT_EQ(back.component(4), 7u);
  EXPECT_EQ(back.component(0), 0u);
}

TEST(ClockStamp, AddEntryRefusesInlineOverflow) {
  ClockStamp d = ClockStamp::delta(0, 64);
  for (std::uint32_t c = 0; c < ClockStamp::kInlineEntries; ++c) {
    EXPECT_TRUE(d.add_entry(c, c + 1));
  }
  // The send path falls back to a dense stamp instead of spilling: a delta
  // wider than the inline capacity would rarely be smaller than the clock.
  EXPECT_FALSE(d.add_entry(20, 1));
  EXPECT_EQ(d.entries().size(), ClockStamp::kInlineEntries);
}

TEST(ClockStamp, AbsorbOlderUnionsAndSpills) {
  // Two disjoint 14-entry deltas union to 28 entries — the repair path's
  // heap spill, exercised only by fault unions, never by sends.
  ClockStamp newer = ClockStamp::delta(0, 64);
  ClockStamp older = ClockStamp::delta(0, 64);
  for (std::uint32_t c = 0; c < ClockStamp::kInlineEntries; ++c) {
    ASSERT_TRUE(newer.add_entry(c, 100 + c));
    ASSERT_TRUE(older.add_entry(32 + c, 200 + c));
  }
  newer.absorb_older(older);
  ASSERT_TRUE(newer.is_delta());
  EXPECT_EQ(newer.entries().size(), 2u * ClockStamp::kInlineEntries);
  const VectorClock merged = newer.to_clock();
  EXPECT_EQ(merged.component(3), 103u);
  EXPECT_EQ(merged.component(35), 203u);
}

TEST(ClockStamp, AbsorbOlderNewerEntriesWin) {
  ClockStamp newer = ClockStamp::delta(1, 8);
  ClockStamp older = ClockStamp::delta(1, 8);
  ASSERT_TRUE(newer.add_entry(3, 9));
  ASSERT_TRUE(older.add_entry(3, 5));
  ASSERT_TRUE(older.add_entry(6, 2));
  newer.absorb_older(older);
  const VectorClock merged = newer.to_clock();
  EXPECT_EQ(merged.component(3), 9u);  // newer value kept
  EXPECT_EQ(merged.component(6), 2u);  // older-only component adopted
}

TEST(ClockStamp, AbsorbDenseDensifiesToAtSendClock) {
  // Delta over dense: the older full clock overlaid with the delta's
  // entries is exactly the newer message's at-send clock.
  VectorClock base(0, 6);
  for (int i = 0; i < 4; ++i) base.tick();
  ClockStamp newer = ClockStamp::delta(0, 6);
  ASSERT_TRUE(newer.add_entry(0, 5));
  ASSERT_TRUE(newer.add_entry(2, 3));
  newer.absorb_older(ClockStamp::dense(base));
  ASSERT_TRUE(newer.is_dense());
  EXPECT_EQ(newer.dense_clock().component(0), 5u);
  EXPECT_EQ(newer.dense_clock().component(2), 3u);
  EXPECT_EQ(newer.dense_clock().component(1), 0u);
}

TEST(ClockStamp, CopyIsDeepForSpilledEntries) {
  ClockStamp a = ClockStamp::delta(0, 64);
  ClockStamp b = ClockStamp::delta(0, 64);
  for (std::uint32_t c = 0; c < ClockStamp::kInlineEntries; ++c) {
    ASSERT_TRUE(a.add_entry(c, 1));
    ASSERT_TRUE(b.add_entry(20 + c, 2));
  }
  a.absorb_older(b);  // spilled
  ClockStamp copy = a;
  a.absorb_older(ClockStamp::dense(VectorClock(0, 64)));  // densify a
  EXPECT_TRUE(copy.is_delta());
  EXPECT_EQ(copy.entries().size(), 2u * ClockStamp::kInlineEntries);
}

// --- Single-channel fuzz: fold(delta) + tick == witness(full clock) -------

// Simulates one sender/receiver channel the way Network does: the sender's
// clock evolves, each send carries either a delta of the components changed
// since the previous send or a dense fallback, and the receiver folds the
// stamp entrywise and ticks. The dense-reference receiver witnesses the
// sender's full at-send clock. The two must agree componentwise forever.
TEST(ClockStampFuzz, ChannelFoldMatchesDenseWitness) {
  std::mt19937_64 rng(20260809);
  for (const std::size_t n : {2u, 3u, 7u, 14u, 15u, 16u, 33u, 64u, 128u,
                              300u}) {
    VectorClock sender(0, n);
    VectorClock receiver_sparse(1, n);
    VectorClock receiver_dense(1, n);
    std::vector<std::uint64_t> baseline(n, 0);  // sender comps at last send

    for (int round = 0; round < 200; ++round) {
      // Sender activity: fold a few random remote components upward, then
      // tick its own — the same moves a real clock makes.
      const std::size_t changes = rng() % std::min<std::size_t>(n, 6);
      for (std::size_t i = 0; i < changes; ++i) {
        const std::size_t c = rng() % n;
        sender.fold(c, sender.component(c) + 1 + rng() % 3);
      }
      sender.tick();

      // Build the stamp exactly like Network::build_stamp: delta of the
      // changed components, dense on inline overflow or 1-in-8 forcing.
      ClockStamp stamp = ClockStamp::delta(0, n);
      bool fits = (rng() % 8) != 0;
      if (fits) {
        for (std::size_t c = 0; c < n && fits; ++c) {
          if (sender.component(c) != baseline[c]) {
            fits = stamp.add_entry(static_cast<std::uint32_t>(c),
                                   sender.component(c));
          }
        }
      }
      if (!fits) stamp = ClockStamp::dense(sender);
      for (std::size_t c = 0; c < n; ++c) baseline[c] = sender.component(c);

      // Deliver: fold + tick on the sparse side, witness on the reference.
      if (stamp.is_dense()) {
        const VectorClock& full = stamp.dense_clock();
        for (std::size_t c = 0; c < n; ++c) {
          receiver_sparse.fold(c, full.component(c));
        }
      } else {
        for (const ClockStamp::Entry& e : stamp.entries()) {
          receiver_sparse.fold(e.comp, e.value);
        }
      }
      receiver_sparse.tick();
      receiver_dense.witness(sender);

      for (std::size_t c = 0; c < n; ++c) {
        ASSERT_EQ(receiver_sparse.component(c), receiver_dense.component(c))
            << "n=" << n << " round=" << round << " comp=" << c;
      }
      EXPECT_TRUE(receiver_sparse.happened_before(sender) ==
                  receiver_dense.happened_before(sender));
    }
  }
}

// Drop repair: folding `survivor.absorb_older(dropped)` must leave the
// receiver exactly where folding dropped-then-survivor would have — the
// union replays the dropped stamp's information at the survivor's delivery.
TEST(ClockStampFuzz, AbsorbOlderEqualsFoldingBothInOrder) {
  std::mt19937_64 rng(424242);
  for (const std::size_t n : {2u, 5u, 14u, 40u, 300u}) {
    for (int round = 0; round < 100; ++round) {
      VectorClock sender(0, n);
      auto advance = [&] {
        const std::size_t changes = rng() % std::min<std::size_t>(n, 5);
        for (std::size_t i = 0; i < changes; ++i) {
          const std::size_t c = rng() % n;
          sender.fold(c, sender.component(c) + 1 + rng() % 4);
        }
        sender.tick();
      };
      auto make_stamp = [&](const std::vector<std::uint64_t>& base) {
        ClockStamp s = ClockStamp::delta(0, n);
        bool fits = (rng() % 6) != 0;
        for (std::size_t c = 0; c < n && fits; ++c) {
          if (sender.component(c) != base[c]) {
            fits =
                s.add_entry(static_cast<std::uint32_t>(c), sender.component(c));
          }
        }
        if (!fits) s = ClockStamp::dense(sender);
        return s;
      };

      std::vector<std::uint64_t> base(n, 0);
      advance();
      ClockStamp older = make_stamp(base);
      for (std::size_t c = 0; c < n; ++c) base[c] = sender.component(c);
      advance();
      ClockStamp newer = make_stamp(base);

      auto fold_into = [n](VectorClock& r, const ClockStamp& s) {
        if (s.is_dense()) {
          for (std::size_t c = 0; c < n; ++c) {
            r.fold(c, s.dense_clock().component(c));
          }
        } else {
          for (const ClockStamp::Entry& e : s.entries()) r.fold(e.comp, e.value);
        }
        r.tick();
      };

      VectorClock both(1, n);
      fold_into(both, older);
      fold_into(both, newer);

      ClockStamp repaired = newer;
      repaired.absorb_older(older);
      VectorClock merged(1, n);
      fold_into(merged, older);  // the dropped message still delivered here:
      fold_into(merged, repaired);
      for (std::size_t c = 0; c < n; ++c) {
        ASSERT_EQ(both.component(c), merged.component(c))
            << "n=" << n << " round=" << round;
      }

      // And when the older message is truly gone, the union must carry at
      // least everything the pair carried (it may only over-approximate by
      // the receiver's own already-held components, never under-shoot).
      VectorClock only_union(1, n);
      fold_into(only_union, repaired);
      const VectorClock reference = [&] {
        VectorClock r(1, n);
        fold_into(r, older);
        fold_into(r, newer);
        return r;
      }();
      for (std::size_t c = 0; c < n; ++c) {
        if (c == 1) continue;  // receiver's own component: one fewer tick
        ASSERT_GE(only_union.component(c) + 1, reference.component(c));
      }
    }
  }
}

// --- Dual-harness equivalence: sparse wire stamps vs dense reference ------

struct ObservedRun {
  std::vector<std::pair<SimTime, std::size_t>> cs_schedule;
  std::vector<std::string> monitor_names;
  std::vector<std::uint64_t> totals;
  std::vector<SimTime> first_times;
  std::vector<SimTime> last_times;
  std::vector<std::string> retained;
  core::RunStats stats;
  core::StabilizationReport report;
};

enum class Reference { kDenseClocks, kFullSweepMonitors };

ObservedRun run_once(core::AlgorithmId algo, std::size_t n, net::FaultMix mix,
                     std::size_t burst, std::uint64_t seed, Reference which,
                     bool reference_on, SimTime horizon) {
  core::HarnessConfig config;
  config.n = n;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 20;
  config.client.think_mean = n >= 32 ? 8 * static_cast<SimTime>(n) : 40;
  config.client.eat_mean = 8;
  config.seed = seed;
  if (which == Reference::kDenseClocks) {
    config.reference_dense_clocks = reference_on;
  } else {
    config.reference_full_sweep_monitors = reference_on;
  }

  core::SystemHarness h(config);

  ObservedRun out;
  std::vector<bool> was_eating(config.n, false);
  h.scheduler().add_observer([&](SimTime t) {
    for (std::size_t j = 0; j < config.n; ++j) {
      const bool eating =
          h.process(static_cast<ProcessId>(j)).state() == me::TmeState::kEating;
      if (eating && !was_eating[j]) out.cs_schedule.emplace_back(t, j);
      was_eating[j] = eating;
    }
  });

  h.start();
  h.run_for(horizon / 4);
  if (burst > 0) h.faults().burst(burst, mix);
  h.run_for(horizon);
  h.drain(horizon);

  for (const auto& m : h.monitors().monitors()) {
    out.monitor_names.push_back(m->name());
    out.totals.push_back(m->total_violations());
    out.first_times.push_back(m->first_violation());
    out.last_times.push_back(m->last_violation());
    for (const auto& v : m->violations()) out.retained.push_back(v.to_string());
  }
  out.stats = h.stats();
  out.report = h.stabilization_report();
  return out;
}

void expect_equivalent(const ObservedRun& a, const ObservedRun& b) {
  EXPECT_EQ(a.cs_schedule, b.cs_schedule);
  ASSERT_EQ(a.monitor_names, b.monitor_names);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.first_times, b.first_times);
  EXPECT_EQ(a.last_times, b.last_times);
  EXPECT_EQ(a.retained, b.retained);
  EXPECT_EQ(a.stats.duration, b.stats.duration);
  EXPECT_EQ(a.stats.cs_entries, b.stats.cs_entries);
  EXPECT_EQ(a.stats.requests_issued, b.stats.requests_issued);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.wrapper_messages, b.stats.wrapper_messages);
  EXPECT_EQ(a.stats.me1_violations, b.stats.me1_violations);
  EXPECT_EQ(a.stats.me3_violations, b.stats.me3_violations);
  EXPECT_EQ(a.stats.invariant_violations, b.stats.invariant_violations);
  EXPECT_EQ(a.stats.me2_served, b.stats.me2_served);
  EXPECT_EQ(a.stats.me2_max_wait, b.stats.me2_max_wait);
  EXPECT_EQ(a.stats.lspec_clause_violations, b.stats.lspec_clause_violations);
  EXPECT_EQ(a.stats.faults_injected, b.stats.faults_injected);
  EXPECT_EQ(a.stats.events_executed, b.stats.events_executed);
  EXPECT_EQ(a.report.stabilized, b.report.stabilized);
  EXPECT_EQ(a.report.starvation, b.report.starvation);
  EXPECT_EQ(a.report.last_fault, b.report.last_fault);
  EXPECT_EQ(a.report.last_safety_violation, b.report.last_safety_violation);
  EXPECT_EQ(a.report.latency, b.report.latency);
  EXPECT_EQ(a.report.violations_total, b.report.violations_total);
}

// Sparse stamps vs dense wire clocks, full fault matrix. Every fault kind
// exercises a different repair: drop/swap/clear move stamp information
// between queue slots, duplicate/corrupt/spurious test the idempotent-fold
// and fabricated-message (empty stamp) paths.
class SparseVsDenseByFaultKind
    : public ::testing::TestWithParam<
          std::tuple<core::Algorithm, net::FaultKind, std::uint64_t>> {};

TEST_P(SparseVsDenseByFaultKind, IdenticalVerdicts) {
  const auto [algo, kind, seed] = GetParam();
  const auto mix = net::FaultMix::only(kind);
  const auto sparse = run_once(algo, 4, mix, 6, seed,
                               Reference::kDenseClocks, false, 3000);
  const auto dense = run_once(algo, 4, mix, 6, seed,
                              Reference::kDenseClocks, true, 3000);
  expect_equivalent(sparse, dense);
}

std::string matrix_name(
    const ::testing::TestParamInfo<
        std::tuple<core::Algorithm, net::FaultKind, std::uint64_t>>& info) {
  std::string name = to_string(std::get<0>(info.param));
  name += "_";
  name += net::to_string(std::get<1>(info.param));
  name += "_s" + std::to_string(std::get<2>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseVsDenseByFaultKind,
    ::testing::Combine(
        ::testing::Values(core::Algorithm::kRicartAgrawala,
                          core::Algorithm::kLamport),
        ::testing::Values(net::FaultKind::kMessageDrop,
                          net::FaultKind::kMessageDuplicate,
                          net::FaultKind::kMessageCorrupt,
                          net::FaultKind::kMessageReorder,
                          net::FaultKind::kSpuriousMessage,
                          net::FaultKind::kProcessCorrupt,
                          net::FaultKind::kChannelClear),
        ::testing::Values(11u)),
    matrix_name);

TEST(SparseVsDense, MixedBurstCarvalhoRoucairol) {
  const auto sparse =
      run_once(core::AlgorithmId{"carvalho-roucairol"}, 5, net::FaultMix::all(), 15,
               3, Reference::kDenseClocks, false, 3000);
  const auto dense =
      run_once(core::AlgorithmId{"carvalho-roucairol"}, 5, net::FaultMix::all(), 15,
               3, Reference::kDenseClocks, true, 3000);
  expect_equivalent(sparse, dense);
}

TEST(SparseVsDense, N64MixedBurst) {
  // The scale the delta encoding exists for: at N=64 dense stamps copy 64
  // components per message; the sparse run must still be bit-identical.
  const auto sparse = run_once(core::Algorithm::kRicartAgrawala, 64,
                               net::FaultMix::all(), 12, 9,
                               Reference::kDenseClocks, false, 1200);
  const auto dense = run_once(core::Algorithm::kRicartAgrawala, 64,
                              net::FaultMix::all(), 12, 9,
                              Reference::kDenseClocks, true, 1200);
  expect_equivalent(sparse, dense);
}

// --- Incremental monitors vs full sweeps at N=64, full fault matrix -------

class IncrementalVsFullSweep
    : public ::testing::TestWithParam<net::FaultKind> {};

TEST_P(IncrementalVsFullSweep, IdenticalVerdictsAtN64) {
  const auto mix = net::FaultMix::only(GetParam());
  const auto incremental =
      run_once(core::Algorithm::kRicartAgrawala, 64, mix, 10, 13,
               Reference::kFullSweepMonitors, false, 900);
  const auto full =
      run_once(core::Algorithm::kRicartAgrawala, 64, mix, 10, 13,
               Reference::kFullSweepMonitors, true, 900);
  expect_equivalent(incremental, full);
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, IncrementalVsFullSweep,
    ::testing::Values(net::FaultKind::kMessageDrop,
                      net::FaultKind::kMessageDuplicate,
                      net::FaultKind::kMessageCorrupt,
                      net::FaultKind::kMessageReorder,
                      net::FaultKind::kSpuriousMessage,
                      net::FaultKind::kProcessCorrupt,
                      net::FaultKind::kChannelClear),
    [](const ::testing::TestParamInfo<net::FaultKind>& info) {
      std::string name = net::to_string(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IncrementalVsFullSweep, MutualBeliefMonitorCoveredAtN64) {
  // Carvalho-Roucairol installs the 5th monitor (MutualBelief); its
  // incremental guard needs its own equivalence run.
  const auto mix = net::FaultMix::all();
  const auto incremental =
      run_once(core::AlgorithmId{"carvalho-roucairol"}, 64, mix, 10, 17,
               Reference::kFullSweepMonitors, false, 900);
  const auto full =
      run_once(core::AlgorithmId{"carvalho-roucairol"}, 64, mix, 10, 17,
               Reference::kFullSweepMonitors, true, 900);
  expect_equivalent(incremental, full);
}

}  // namespace
}  // namespace graybox
