// Tests for the per-clause Lspec monitors: clean on fault-free runs of both
// programs, each clause individually triggerable by the matching surgical
// fault, and clean suffixes after recovery.
#include <gtest/gtest.h>

#include "core/harness.hpp"
#include "core/stabilization.hpp"
#include "me/ricart_agrawala.hpp"

namespace graybox::core {
namespace {

HarnessConfig config_for(Algorithm algo) {
  HarnessConfig config;
  config.n = 3;
  config.algorithm = algo;
  config.wrapped = true;
  config.wrapper.resend_period = 15;
  config.client.think_mean = 30;
  config.client.eat_mean = 6;
  config.seed = 77;
  return config;
}

class LspecClauseFaultFree : public ::testing::TestWithParam<Algorithm> {};

TEST_P(LspecClauseFaultFree, AllClausesClean) {
  SystemHarness h(config_for(GetParam()));
  h.start();
  h.run_for(5000);
  h.drain(3000);
  const auto& clauses = h.lspec_monitors();
  EXPECT_EQ(clauses.flow->total_violations(), 0u);
  EXPECT_EQ(clauses.cs_transient->total_violations(), 0u);
  EXPECT_EQ(clauses.request_frozen->total_violations(), 0u);
  EXPECT_EQ(clauses.release_tracks_clock->total_violations(), 0u);
  EXPECT_EQ(clauses.entry_taken->total_violations(), 0u);
  EXPECT_EQ(clauses.total_violations(), 0u);
  EXPECT_EQ(clauses.last_violation(), kNever);
  EXPECT_EQ(h.stats().lspec_clause_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LspecClauseFaultFree,
                         ::testing::Values(Algorithm::kRicartAgrawala,
                                           Algorithm::kLamport),
                         [](const auto& info) {
                           return info.param == Algorithm::kRicartAgrawala
                                      ? "ra"
                                      : "lamport";
                         });

TEST(LspecClauses, FlowSpecFlagsIllegalJump) {
  // Park process 0 hungry (outgoing requests lost), then fault it straight
  // back to thinking: h -> t is never a program transition, and the
  // thinking state sticks long enough for the next snapshot to see it.
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  h.process(0).request_cs();
  h.network().channel(0, 1).fault_clear();
  h.network().channel(0, 2).fault_clear();
  h.run_for(3);
  ASSERT_TRUE(h.process(0).hungry());
  h.process(0).fault_set_state(me::TmeState::kThinking);
  h.run_for(3);
  EXPECT_GT(h.lspec_monitors().flow->total_violations(), 0u);
}

TEST(LspecClauses, RequestSpecFlagsMovedReq) {
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  // Park process 0 hungry (its requests are lost), then corrupt its REQ.
  h.process(0).request_cs();
  h.network().channel(0, 1).fault_clear();
  h.network().channel(0, 2).fault_clear();
  h.run_for(3);
  ASSERT_TRUE(h.process(0).hungry());
  h.process(0).fault_set_req(clk::Timestamp{999, 0});
  h.run_for(3);
  EXPECT_GT(h.lspec_monitors().request_frozen->total_violations(), 0u);
}

TEST(LspecClauses, ReleaseSpecFlagsDetachedReq) {
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  h.run_for(100);
  while (!h.process(0).thinking()) h.run_for(2);
  h.process(0).fault_set_req(clk::Timestamp{123456, 0});
  h.run_for(3);
  EXPECT_GT(
      h.lspec_monitors().release_tracks_clock->total_violations(), 0u);
}

TEST(LspecClauses, ReleaseSpecViolationHealsOnNextEvent) {
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  h.run_for(100);
  while (!h.process(0).thinking()) h.run_for(2);
  h.process(0).fault_set_req(clk::Timestamp{123456, 0});
  h.run_for(2000);
  h.drain(2000);
  // The clause was violated transiently...
  EXPECT_GT(
      h.lspec_monitors().release_tracks_clock->total_violations(), 0u);
  // ...but healed: the last violation precedes the end by a wide margin.
  EXPECT_LT(h.lspec_monitors().release_tracks_clock->last_violation(),
            1000u);
}

TEST(LspecClauses, CsSpecFlagsEternalEater) {
  // Stop process 0's client (its release obligation with it) while the
  // other clients keep generating events for the snapshot stream: a faked
  // eternal eater is then a genuine CS Spec violation.
  HarnessConfig config = config_for(Algorithm::kRicartAgrawala);
  config.client.wants_cs = false;
  SystemHarness h(config);
  h.start();
  h.client(0).stop();
  h.run_for(50);
  h.process(0).fault_set_state(me::TmeState::kEating);
  h.run_for(500);
  h.drain(500);
  EXPECT_GT(h.lspec_monitors().cs_transient->total_violations(), 0u);
}

TEST(LspecClauses, EntrySpecCleanBecausePollingTakesEntries) {
  // Corrupt a process into "hungry with favorable views": the client's
  // poll must take the enabled entry, so the clause stays clean overall
  // after the drain.
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  h.run_for(100);
  auto& p0 = dynamic_cast<me::RicartAgrawala&>(h.process(0));
  p0.fault_set_state(me::TmeState::kHungry);
  p0.fault_set_req(clk::Timestamp{1, 0});
  p0.fault_set_view(1, clk::Timestamp{1'000'000, 1});
  p0.fault_set_view(2, clk::Timestamp{1'000'000, 2});
  h.run_for(3000);
  h.drain(2000);
  EXPECT_EQ(h.lspec_monitors().entry_taken->total_violations(), 0u);
}

TEST(LspecClauses, CleanSuffixAfterRandomCorruption) {
  SystemHarness h(config_for(Algorithm::kLamport));
  h.start();
  h.run_for(500);
  h.faults().burst(6, net::FaultMix::process_only());
  const SimTime fault_at = h.scheduler().now();
  h.run_for(6000);
  h.drain(4000);
  // Whatever clause violations occurred sit in a bounded window after the
  // fault; the suffix is clean.
  const SimTime last = h.lspec_monitors().last_violation();
  if (last != kNever) {
    EXPECT_GE(last, fault_at);
    EXPECT_LT(last, fault_at + 6000);
  }
  EXPECT_TRUE(h.stabilization_report().stabilized);
}

TEST(LspecClauses, CanBeDisabledIndependently) {
  HarnessConfig config = config_for(Algorithm::kRicartAgrawala);
  config.install_lspec_monitors = false;
  SystemHarness h(config);
  h.start();
  h.run_for(500);
  EXPECT_EQ(h.lspec_monitors().flow, nullptr);
  EXPECT_EQ(h.lspec_monitors().total_violations(), 0u);
  EXPECT_EQ(h.monitors().size(), 4u);  // only the TME battery
}

TEST(HarnessTrace, RecordsWhenEnabled) {
  HarnessConfig config = config_for(Algorithm::kRicartAgrawala);
  config.trace_capacity = 256;
  SystemHarness h(config);
  h.start();
  h.run_for(500);
  EXPECT_GT(h.trace().total_recorded(), 0u);
  // Spot-check record shapes.
  bool saw_send = false, saw_transition = false;
  const sim::Trace& trace = h.trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& r = trace.at(i);
    if (r.text.rfind("send ", 0) == 0) saw_send = true;
    if (r.text.find(" -> ") != std::string::npos &&
        r.text.rfind("proc ", 0) == 0)
      saw_transition = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_transition);
}

TEST(HarnessTrace, DisabledByDefault) {
  SystemHarness h(config_for(Algorithm::kRicartAgrawala));
  h.start();
  h.run_for(500);
  EXPECT_EQ(h.trace().total_recorded(), 0u);
}

}  // namespace
}  // namespace graybox::core
