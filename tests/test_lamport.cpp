// Unit tests for the modified Lamport program: queue discipline, grants,
// release handling, the paper's two modifications, and stale-entry
// retirement from corrupted states.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/lamport.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace graybox::me {
namespace {

class LamportTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 3;

  explicit LamportTest(LamportOptions options = {})
      : net(sched, kN, net::DelayModel::fixed(1), Rng(5)) {
    for (ProcessId pid = 0; pid < kN; ++pid) {
      procs.push_back(std::make_unique<LamportMe>(pid, net, options));
      auto* p = procs.back().get();
      net.set_handler(pid,
                      [p](const net::Message& m) { p->on_message(m); });
    }
  }

  LamportMe& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sched.run_all(); }

  bool queue_has(ProcessId at, ProcessId entry_pid) {
    for (const auto& e : p(at).queue())
      if (e.pid == entry_pid) return true;
    return false;
  }

  sim::Scheduler sched;
  net::Network net;
  std::vector<std::unique_ptr<LamportMe>> procs;
};

TEST_F(LamportTest, InitialStateEmptyQueue) {
  for (ProcessId pid = 0; pid < kN; ++pid) {
    EXPECT_TRUE(p(pid).thinking());
    EXPECT_TRUE(p(pid).queue().empty());
  }
}

TEST_F(LamportTest, RequestInsertsOwnEntryAndBroadcasts) {
  p(0).request_cs();
  EXPECT_TRUE(queue_has(0, 0));
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRequest), kN - 1);
}

TEST_F(LamportTest, SoloRequestEntersAfterAcks) {
  p(0).request_cs();
  settle();
  EXPECT_TRUE(p(0).eating());
  // Everyone replied; grants recorded.
  EXPECT_TRUE(p(0).granted(1));
  EXPECT_TRUE(p(0).granted(2));
}

TEST_F(LamportTest, PeersLearnRequestsViaQueue) {
  p(0).request_cs();
  settle();
  EXPECT_TRUE(queue_has(1, 0));
  EXPECT_TRUE(queue_has(2, 0));
}

TEST_F(LamportTest, ReleaseBroadcastsAndRetiresEntries) {
  p(0).request_cs();
  settle();
  p(0).release_cs();
  EXPECT_FALSE(queue_has(0, 0));
  settle();
  EXPECT_EQ(net.sent_of_type(net::MsgType::kRelease), kN - 1);
  EXPECT_FALSE(queue_has(1, 0));
  EXPECT_FALSE(queue_has(2, 0));
}

TEST_F(LamportTest, MutualExclusionUnderContention) {
  p(0).request_cs();
  p(1).request_cs();
  p(2).request_cs();
  std::size_t max_eating = 0;
  std::uint64_t entries = 0;
  for (int round = 0; round < 400; ++round) {
    if (!sched.step()) break;
    std::size_t eating = 0;
    for (ProcessId pid = 0; pid < kN; ++pid)
      if (p(pid).eating()) ++eating;
    max_eating = std::max(max_eating, eating);
    for (ProcessId pid = 0; pid < kN; ++pid) {
      if (p(pid).eating()) {
        p(pid).release_cs();
        ++entries;
      }
    }
  }
  EXPECT_LE(max_eating, 1u);
  EXPECT_EQ(entries, 3u);
}

TEST_F(LamportTest, FcfsByTimestampOrder) {
  p(0).request_cs();
  p(1).request_cs();  // same tick: {1,0} lt {1,1}
  settle();
  EXPECT_TRUE(p(0).eating());
  EXPECT_TRUE(p(1).hungry());
  p(0).release_cs();
  settle();
  EXPECT_TRUE(p(1).eating());
}

TEST_F(LamportTest, QueueKeepsOneEntryPerProcess) {
  // Modification 1: a replayed/duplicated old request must not create a
  // second entry; the newest replaces.
  p(0).request_cs();
  settle();
  net::Message dup;
  dup.type = net::MsgType::kRequest;
  dup.from = 0;
  dup.to = 1;
  dup.ts = clk::Timestamp{777, 0};
  p(1).on_message(dup);
  std::size_t count = 0;
  for (const auto& e : p(1).queue())
    if (e.pid == 0) ++count;
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(p(1).view_of(0).counter, 777u);
}

TEST_F(LamportTest, QueueSortedByTimestamp) {
  p(2).request_cs();
  settle();
  p(2).release_cs();
  settle();
  p(0).request_cs();
  p(1).request_cs();
  settle();
  // Both entries present at process 2, earliest first.
  const auto& q = p(2).queue();
  ASSERT_GE(q.size(), 2u);
  for (std::size_t i = 1; i < q.size(); ++i)
    EXPECT_TRUE(!clk::lt(q[i].ts, q[i - 1].ts));
}

TEST_F(LamportTest, ReplyCarriesCurrentReqAndGrants) {
  p(0).request_cs();
  settle();
  // Grants derive from last_heard: everyone's reply exceeded REQ0.
  EXPECT_TRUE(clk::lt(p(0).req(), p(0).last_heard(1)));
  EXPECT_TRUE(clk::lt(p(0).req(), p(0).last_heard(2)));
}

TEST_F(LamportTest, StaleEntryRetiredByReply) {
  // A corrupted (fabricated) old entry for a peer is retired by the next
  // reply from that peer, because the reply proves the peer's REQ moved on.
  p(1).fault_insert_queue_entry(0, clk::Timestamp{1, 0});
  p(1).request_cs();
  settle();
  EXPECT_FALSE(queue_has(1, 0));
  EXPECT_TRUE(p(1).eating());
}

TEST_F(LamportTest, StaleEntryRetiredByRelease) {
  p(0).request_cs();
  settle();
  // Corrupt 1's entry for 0 to something older than 0's actual request.
  p(1).fault_clear_queue();
  p(1).fault_insert_queue_entry(0, clk::Timestamp{0, 0});
  p(0).release_cs();
  settle();
  EXPECT_FALSE(queue_has(1, 0));
}

TEST_F(LamportTest, GenuineEarlierEntryNotRetiredByReply) {
  // 0 requests first; 1 requests later. 0's reply to 1 carries REQ0 (its
  // outstanding request), which must NOT retire 0's genuine entry at 1.
  p(0).request_cs();
  settle();  // everyone knows 0's request
  p(1).request_cs();
  settle();
  EXPECT_TRUE(queue_has(1, 0));
  EXPECT_TRUE(p(1).hungry());  // correctly blocked behind 0
}

TEST_F(LamportTest, CorruptedHighLastHeardHealsOnNextMessage) {
  p(0).fault_set_last_heard(1, clk::Timestamp{1'000'000, 1});
  p(1).request_cs();
  const auto req1 = p(1).req();
  settle();
  EXPECT_EQ(p(0).last_heard(1), req1);
}

TEST_F(LamportTest, MissingOwnEntryDoesNotWedgeEntry) {
  // Modification 2: entry depends on *other* processes' entries only, so a
  // corrupted-away own entry cannot block the CS forever.
  p(0).request_cs();
  p(0).fault_clear_queue();
  settle();
  EXPECT_TRUE(p(0).eating());
}

TEST_F(LamportTest, TotalHandlerToleratesCorruptMessages) {
  net::Message junk;
  junk.type = net::MsgType::kRelease;
  junk.from = 77;  // out of range
  junk.to = 0;
  junk.ts = clk::Timestamp{5, 1};
  p(0).on_message(junk);
  junk.from = 0;  // self
  p(0).on_message(junk);
  EXPECT_TRUE(p(0).thinking());
  EXPECT_TRUE(p(0).queue().empty());
}

TEST_F(LamportTest, CorruptedStateRemainsOperable) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    p(0).corrupt_state(rng);
    for (ProcessId k = 1; k < kN; ++k) {
      (void)p(0).knows_earlier(k);
      (void)p(0).view_of(k);
      (void)p(0).granted(k);
    }
    (void)p(0).queue();
  }
  SUCCEED();
}

TEST_F(LamportTest, ViewOfPrefersQueueEntry) {
  p(0).fault_insert_queue_entry(1, clk::Timestamp{5, 1});
  p(0).fault_set_last_heard(1, clk::Timestamp{9, 1});
  EXPECT_EQ(p(0).view_of(1), (clk::Timestamp{5, 1}));
  p(0).fault_clear_queue();
  EXPECT_EQ(p(0).view_of(1), (clk::Timestamp{9, 1}));
}

TEST_F(LamportTest, AlgorithmName) { EXPECT_EQ(p(0).algorithm(), "lamport"); }

// --- head_only_release ablation -------------------------------------------

class LamportHeadOnlyTest : public LamportTest {
 protected:
  LamportHeadOnlyTest()
      : LamportTest(LamportOptions{.head_only_release = true}) {}
};

TEST_F(LamportHeadOnlyTest, FaultFreeBehaviourUnchanged) {
  p(0).request_cs();
  p(1).request_cs();
  settle();
  EXPECT_TRUE(p(0).eating());
  p(0).release_cs();
  settle();
  EXPECT_TRUE(p(1).eating());
  p(1).release_cs();
  settle();
  EXPECT_TRUE(p(0).thinking());
  EXPECT_TRUE(p(1).thinking());
}

TEST_F(LamportHeadOnlyTest, CorruptedEntryWedgesForever) {
  // The A2 ablation: a fabricated earliest entry for a silent process is
  // never retired, so the requester waits forever.
  p(1).fault_insert_queue_entry(0, clk::Timestamp{1, 0});
  p(1).request_cs();
  settle();
  EXPECT_TRUE(p(1).hungry());           // wedged
  EXPECT_TRUE(queue_has(1, 0));         // stale entry still there
}

TEST(LamportSingleProcess, EntersImmediatelyWithNoPeers) {
  sim::Scheduler sched;
  net::Network net(sched, 1, net::DelayModel::fixed(1), Rng(7));
  LamportMe solo(0, net);
  net.set_handler(0, [&](const net::Message& m) { solo.on_message(m); });
  solo.request_cs();
  EXPECT_TRUE(solo.eating());
  solo.release_cs();
  EXPECT_TRUE(solo.thinking());
  EXPECT_TRUE(solo.queue().empty());
}

}  // namespace
}  // namespace graybox::me
