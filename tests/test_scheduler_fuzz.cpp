// Equivalence fuzzing for the time-wheel scheduler.
//
// The production Scheduler is a two-level bucketed time wheel with
// generation-stamped slots; its specification is much simpler: execute
// events in (time, insertion-order) order. ReferenceScheduler below *is*
// that specification — the binary-heap implementation the wheel replaced,
// retained here as an executable oracle. Each fuzz iteration generates one
// random operation trace (schedule bursts at equal times, cancels,
// far-future events beyond the wheel horizon, timers that re-arm from
// inside their own callback, partial runs) and replays it against both
// implementations, requiring identical execution order, times, cancel
// results, and counters at every checkpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.hpp"

namespace graybox::sim {
namespace {

// --- The executable specification ------------------------------------------

// (time, insertion-seq) binary heap + map of live callbacks, mirroring the
// pre-wheel implementation: cancel removes the callback and leaves a
// tombstoned heap entry behind; stale entries are skipped when reached.
class ReferenceScheduler {
 public:
  using Id = std::uint64_t;

  SimTime now() const { return now_; }

  Id schedule_at(SimTime t, std::function<void()> fn) {
    EXPECT_GE(t, now_);
    const Id id = next_id_++;
    queue_.push(Entry{t, id});
    fns_.emplace(id, std::move(fn));
    return id;
  }

  Id schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(Id id) { return fns_.erase(id) > 0; }

  bool step() {
    skim();
    if (queue_.empty()) return false;
    const Entry e = queue_.top();
    queue_.pop();
    auto node = fns_.extract(e.id);
    now_ = e.time;
    ++executed_;
    auto fn = std::move(node.mapped());
    fn();
    return true;
  }

  void run_until(SimTime t) {
    for (;;) {
      skim();
      if (queue_.empty() || queue_.top().time > t) break;
      step();
    }
    now_ = t;
  }

  void run_for(SimTime duration) { run_until(now_ + duration); }

  void run_all() {
    while (step()) {
    }
  }

  bool idle() const { return fns_.empty(); }
  std::size_t pending() const { return fns_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    Id id;  // ids increase monotonically, so id order is insertion order
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void skim() {
    while (!queue_.empty() && fns_.find(queue_.top().id) == fns_.end())
      queue_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<Id, std::function<void()>> fns_;
  SimTime now_ = 0;
  Id next_id_ = 1;
  std::uint64_t executed_ = 0;
};

// --- Trace generation -------------------------------------------------------

struct Op {
  enum Kind {
    kSchedule,  // a: delay, b: re-arm delay (0 = plain event)
    kCancel,    // idx: index into the ids scheduled so far
    kStep,
    kRunUntil,  // a: duration past now
    kRunAll,
  } kind;
  SimTime a = 0;
  SimTime b = 0;
  std::size_t idx = 0;
};

// Delay mix spanning every wheel regime: equal-time bursts (0), in-wheel
// (< 1024), straddling the horizon, and deep spill territory.
SimTime random_delay(std::mt19937_64& rng) {
  switch (rng() % 10) {
    case 0:
    case 1:
    case 2:
      return 0;
    case 3:
    case 4:
      return rng() % 8;
    case 5:
    case 6:
      return rng() % 300;
    case 7:
      return 900 + rng() % 300;  // straddles the 1024-tick wheel horizon
    case 8:
      return 1000 + rng() % 5000;
    default:
      return 100'000 + rng() % 2'000'000;
  }
}

std::vector<Op> random_trace(std::uint64_t seed, std::size_t length) {
  std::mt19937_64 rng(seed);
  std::vector<Op> ops;
  ops.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    Op op;
    const auto roll = rng() % 100;
    if (roll < 50) {
      op.kind = Op::kSchedule;
      op.a = random_delay(rng);
      op.b = (rng() % 4 == 0) ? 1 + random_delay(rng) : 0;
    } else if (roll < 65) {
      op.kind = Op::kCancel;
      op.idx = rng();
    } else if (roll < 80) {
      op.kind = Op::kStep;
    } else if (roll < 97) {
      op.kind = Op::kRunUntil;
      op.a = random_delay(rng);
    } else {
      op.kind = Op::kRunAll;
    }
    ops.push_back(op);
  }
  return ops;
}

// --- Trace replay ------------------------------------------------------------

struct Trace {
  std::vector<std::pair<int, SimTime>> log;  // (label, execution time)
  std::vector<bool> cancel_results;
  std::vector<std::uint64_t> checkpoints;  // executed() after each op
  std::uint64_t executed = 0;
  std::size_t pending = 0;
  SimTime now = 0;
};

// Replays `ops` against scheduler type S. Labels are assigned in scheduling
// order (including re-arms fired from inside callbacks), so two replays
// whose execution orders match assign identical labels throughout; any
// divergence surfaces as a log mismatch.
template <class S, class Id>
Trace replay(const std::vector<Op>& ops) {
  S sched;
  Trace trace;
  std::vector<Id> ids;
  int next_label = 0;

  std::function<void(SimTime, SimTime)> schedule_one = [&](SimTime delay,
                                                           SimTime rearm) {
    const int label = next_label++;
    ids.push_back(sched.schedule_after(delay, [&trace, &sched, &schedule_one,
                                               label, rearm] {
      trace.log.emplace_back(label, sched.now());
      if (rearm > 0) schedule_one(rearm, 0);
    }));
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kSchedule:
        schedule_one(op.a, op.b);
        break;
      case Op::kCancel:
        if (!ids.empty())
          trace.cancel_results.push_back(sched.cancel(ids[op.idx % ids.size()]));
        break;
      case Op::kStep:
        sched.step();
        break;
      case Op::kRunUntil:
        sched.run_until(sched.now() + op.a);
        break;
      case Op::kRunAll:
        sched.run_all();
        break;
    }
    trace.checkpoints.push_back(sched.executed());
  }
  sched.run_all();
  trace.executed = sched.executed();
  trace.pending = sched.pending();
  trace.now = sched.now();
  return trace;
}

void expect_equivalent(std::uint64_t seed, std::size_t length) {
  const auto ops = random_trace(seed, length);
  const Trace wheel = replay<Scheduler, EventId>(ops);
  const Trace ref = replay<ReferenceScheduler, ReferenceScheduler::Id>(ops);

  ASSERT_EQ(wheel.log.size(), ref.log.size()) << "seed " << seed;
  for (std::size_t i = 0; i < wheel.log.size(); ++i) {
    EXPECT_EQ(wheel.log[i].first, ref.log[i].first)
        << "seed " << seed << " divergence at event " << i;
    EXPECT_EQ(wheel.log[i].second, ref.log[i].second)
        << "seed " << seed << " time divergence at event " << i;
    if (wheel.log[i] != ref.log[i]) return;  // report first divergence only
  }
  EXPECT_EQ(wheel.cancel_results, ref.cancel_results) << "seed " << seed;
  EXPECT_EQ(wheel.checkpoints, ref.checkpoints) << "seed " << seed;
  EXPECT_EQ(wheel.executed, ref.executed) << "seed " << seed;
  EXPECT_EQ(wheel.pending, ref.pending) << "seed " << seed;
  EXPECT_EQ(wheel.now, ref.now) << "seed " << seed;
  EXPECT_EQ(wheel.pending, 0u);  // run_all drained both
}

// --- Tests -------------------------------------------------------------------

TEST(SchedulerFuzz, MatchesReferenceAcrossManySeeds) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed)
    expect_equivalent(seed, 400);
}

TEST(SchedulerFuzz, LongTraces) {
  for (std::uint64_t seed = 1000; seed <= 1010; ++seed)
    expect_equivalent(seed, 5000);
}

TEST(SchedulerFuzz, EqualTimeBurstHeavy) {
  // All-zero delays: everything lands on one tick; pure insertion-order
  // stress with interleaved cancels.
  std::mt19937_64 rng(42);
  std::vector<Op> ops;
  for (int i = 0; i < 2000; ++i) {
    Op op;
    const auto roll = rng() % 10;
    if (roll < 6) {
      op.kind = Op::kSchedule;
      op.a = 0;
      op.b = (roll == 0) ? 1 : 0;
    } else if (roll < 8) {
      op.kind = Op::kCancel;
      op.idx = rng();
    } else {
      op.kind = Op::kStep;
    }
    ops.push_back(op);
  }
  const Trace wheel = replay<Scheduler, EventId>(ops);
  const Trace ref = replay<ReferenceScheduler, ReferenceScheduler::Id>(ops);
  EXPECT_EQ(wheel.log, ref.log);
  EXPECT_EQ(wheel.cancel_results, ref.cancel_results);
  EXPECT_EQ(wheel.executed, ref.executed);
}

TEST(SchedulerFuzz, FarFutureRearmedTimers) {
  // Timers that repeatedly re-arm far beyond the wheel horizon, with the
  // occasional cancel — the engine's timeout-tuning access pattern.
  std::mt19937_64 rng(7);
  std::vector<Op> ops;
  for (int i = 0; i < 600; ++i) {
    Op op;
    const auto roll = rng() % 10;
    if (roll < 4) {
      op.kind = Op::kSchedule;
      op.a = 2000 + rng() % 100'000;
      op.b = 2000 + rng() % 100'000;
    } else if (roll < 7) {
      op.kind = Op::kCancel;
      op.idx = rng();
    } else {
      op.kind = Op::kRunUntil;
      op.a = rng() % 50'000;
    }
    ops.push_back(op);
  }
  const Trace wheel = replay<Scheduler, EventId>(ops);
  const Trace ref = replay<ReferenceScheduler, ReferenceScheduler::Id>(ops);
  EXPECT_EQ(wheel.log, ref.log);
  EXPECT_EQ(wheel.cancel_results, ref.cancel_results);
  EXPECT_EQ(wheel.executed, ref.executed);
  EXPECT_EQ(wheel.now, ref.now);
}

}  // namespace
}  // namespace graybox::sim
