// Tests for the graybox model checker (mc::Explorer): trace round-trips,
// deterministic re-execution, the seeded-mutant detection matrix that
// backs the CI mutation smoke, and clean baselines proving the detector
// does not cry wolf on the correct implementations.
#include <gtest/gtest.h>

#include <string>

#include "mc/explorer.hpp"
#include "mc/mutants.hpp"
#include "mc/trace.hpp"

namespace graybox::mc {
namespace {

// --- ScheduleTrace -----------------------------------------------------------

TEST(ScheduleTrace, TextFormRoundTrips) {
  ScheduleTrace t;
  t.seed = 42;
  t.choices = {0, 2, 0, 1};
  FaultAt f;
  f.at_event = 180;
  f.fault.code = static_cast<std::uint8_t>(net::FaultKind::kMessageDrop);
  f.fault.a = 1;
  f.fault.b = 0;
  f.fault.index = 3;
  t.faults.push_back(f);

  const auto back = ScheduleTrace::from_text(t.to_text());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 42u);
  EXPECT_EQ(back->choices, t.choices);
  ASSERT_EQ(back->faults.size(), 1u);
  EXPECT_EQ(back->faults[0].at_event, 180u);
  EXPECT_EQ(back->faults[0].fault.code, t.faults[0].fault.code);
  EXPECT_EQ(back->faults[0].fault.a, 1u);
  EXPECT_EQ(back->faults[0].fault.index, 3u);
  // Round-tripping the rendered text again is byte-stable.
  EXPECT_EQ(back->to_text(), t.to_text());
}

TEST(ScheduleTrace, FromTextRejectsGarbage) {
  EXPECT_FALSE(ScheduleTrace::from_text("").has_value());
  EXPECT_FALSE(ScheduleTrace::from_text("not a trace\n").has_value());
  EXPECT_FALSE(ScheduleTrace::from_text("graybox-mc-trace v9\nseed 1\n")
                   .has_value());
}

TEST(ScheduleTrace, StepsCountsFaultsAndNonDefaultChoices) {
  ScheduleTrace t;
  t.choices = {0, 3, 0, 0, 1};
  t.faults.resize(2);
  EXPECT_EQ(t.steps(), 4u);
  t.normalize();  // trailing zeros replay identically to absence
  EXPECT_EQ(t.choices.size(), 5u);
  t.choices = {1, 0, 0};
  t.normalize();
  EXPECT_EQ(t.choices.size(), 1u);
}

// --- Deterministic execution -------------------------------------------------

ExplorerConfig small_config(const std::string& algorithm, bool wrapped,
                            double think_mean) {
  ExplorerConfig ec;
  ec.harness.n = 2;
  ec.harness.algorithm = algorithm;
  ec.harness.wrapped = wrapped;
  ec.harness.client.think_mean = think_mean;
  ec.delay_budget = 3;
  return ec;
}

TEST(Explorer, ExecuteIsDeterministic) {
  register_mutants();
  ExplorerConfig ec = small_config("ricart-agrawala", true, 30.0);
  Explorer ex(ec);
  ScheduleTrace t;
  t.seed = 7;
  t.choices = {0, 1, 0, 2};
  const Outcome a = ex.execute(t);
  const Outcome b = ex.execute(t);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.bug, b.bug);
  // A fresh Explorer over the same config reproduces the digest too —
  // nothing about the outcome depends on explorer-instance state.
  Explorer ex2(ec);
  EXPECT_EQ(ex2.execute(t).digest, a.digest);
}

TEST(Explorer, OutOfRangeChoicesAreClampedNotFatal) {
  register_mutants();
  Explorer ex(small_config("lamport", true, 30.0));
  ScheduleTrace t;
  t.seed = 3;
  // Absurd choice indices must clamp to the live alternative count (the
  // shrinker and hand-edited trace files depend on this robustness).
  t.choices = {9999, 0, 12345, 7};
  const Outcome a = ex.execute(t);
  const Outcome b = ex.execute(t);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_FALSE(a.bug);
}

// --- Mutation detection ------------------------------------------------------
//
// Mirrors tools/graybox_mc --mutation-smoke: each seeded mutant must be
// found by bounded exploration and shrink to <= 10 steps. Fault-free
// configs, so kAnySafetyViolation is sound — the correct counterparts are
// provably clean under the same configs (baselines below).

void expect_caught(const char* algorithm, double think_mean,
                   const char* expect_kind_prefix) {
  register_mutants();
  ExplorerConfig ec = small_config(algorithm, false, think_mean);
  ec.budget = 200;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 4 && !found; ++seed) {
    ec.harness.seed = seed;
    Explorer ex(ec);
    const ExplorerResult r = ex.run();
    if (!r.found) continue;
    found = true;
    EXPECT_LE(r.counterexample.steps(), 10u) << algorithm;
    EXPECT_TRUE(r.outcome.bug);
    EXPECT_EQ(r.outcome.kind.rfind(expect_kind_prefix, 0), 0u)
        << algorithm << " kind=" << r.outcome.kind;
    // The shrunk counterexample replays to the same verdict.
    Explorer replay(ec);
    EXPECT_TRUE(replay.execute(r.counterexample).bug) << algorithm;
    // And the renderer produces a non-trivial explanation.
    const std::string text = ex.explain(r.counterexample);
    EXPECT_NE(text.find("graybox-mc-trace v1"), std::string::npos);
    EXPECT_NE(text.find(r.outcome.kind), std::string::npos);
  }
  EXPECT_TRUE(found) << algorithm << ": no seed in 1..4 caught the mutant";
}

TEST(MutationSmoke, RaTiebreakMutantCaughtAndShrunk) {
  expect_caught("mutant-ra-tiebreak", 3.0, "me1");
}

TEST(MutationSmoke, RaEagerReplyMutantCaughtAndShrunk) {
  expect_caught("mutant-ra-eager-reply", 20.0, "starvation");
}

TEST(MutationSmoke, LamportNoAckMutantCaughtAndShrunk) {
  expect_caught("mutant-lamport-no-ack", 10.0, "me1");
}

// --- Clean baselines ---------------------------------------------------------
//
// The correct implementations stay clean under the exact explorer configs
// that catch their mutants: detection is the defect, not the harness.

void expect_clean(const char* algorithm, double think_mean) {
  ExplorerConfig ec = small_config(algorithm, false, think_mean);
  ec.budget = 60;
  ec.harness.seed = 1;
  Explorer ex(ec);
  const ExplorerResult r = ex.run();
  EXPECT_FALSE(r.found) << algorithm << ": " << r.outcome.detail;
}

TEST(MutationSmoke, CorrectRicartAgrawalaCleanUnderTiebreakConfig) {
  expect_clean("ricart-agrawala", 3.0);
}

TEST(MutationSmoke, CorrectRicartAgrawalaCleanUnderEagerReplyConfig) {
  expect_clean("ricart-agrawala", 20.0);
}

TEST(MutationSmoke, CorrectLamportCleanUnderNoAckConfig) {
  expect_clean("lamport", 10.0);
}

}  // namespace
}  // namespace graybox::mc
