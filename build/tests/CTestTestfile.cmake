# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_clock[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_algebra_theorems[1]_include.cmake")
include("/root/repo/build/tests/test_tolerance[1]_include.cmake")
include("/root/repo/build/tests/test_algebra_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_spec_monitors[1]_include.cmake")
include("/root/repo/build/tests/test_ricart_agrawala[1]_include.cmake")
include("/root/repo/build/tests/test_lamport[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_wrapper[1]_include.cmake")
include("/root/repo/build/tests/test_lspec_monitors[1]_include.cmake")
include("/root/repo/build/tests/test_lspec_clauses[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_stabilization[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_fragile[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_heterogeneous[1]_include.cmake")
include("/root/repo/build/tests/test_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_edges[1]_include.cmake")
