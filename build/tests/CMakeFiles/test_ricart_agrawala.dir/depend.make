# Empty dependencies file for test_ricart_agrawala.
# This may be replaced when dependencies are built.
