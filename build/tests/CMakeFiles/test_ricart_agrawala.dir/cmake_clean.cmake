file(REMOVE_RECURSE
  "CMakeFiles/test_ricart_agrawala.dir/test_ricart_agrawala.cpp.o"
  "CMakeFiles/test_ricart_agrawala.dir/test_ricart_agrawala.cpp.o.d"
  "test_ricart_agrawala"
  "test_ricart_agrawala.pdb"
  "test_ricart_agrawala[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ricart_agrawala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
