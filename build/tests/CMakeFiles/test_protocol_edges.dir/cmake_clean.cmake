file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_edges.dir/test_protocol_edges.cpp.o"
  "CMakeFiles/test_protocol_edges.dir/test_protocol_edges.cpp.o.d"
  "test_protocol_edges"
  "test_protocol_edges.pdb"
  "test_protocol_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
