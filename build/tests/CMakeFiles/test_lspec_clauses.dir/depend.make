# Empty dependencies file for test_lspec_clauses.
# This may be replaced when dependencies are built.
