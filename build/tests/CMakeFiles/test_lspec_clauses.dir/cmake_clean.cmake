file(REMOVE_RECURSE
  "CMakeFiles/test_lspec_clauses.dir/test_lspec_clauses.cpp.o"
  "CMakeFiles/test_lspec_clauses.dir/test_lspec_clauses.cpp.o.d"
  "test_lspec_clauses"
  "test_lspec_clauses.pdb"
  "test_lspec_clauses[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lspec_clauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
