file(REMOVE_RECURSE
  "CMakeFiles/test_algebra_theorems.dir/test_algebra_theorems.cpp.o"
  "CMakeFiles/test_algebra_theorems.dir/test_algebra_theorems.cpp.o.d"
  "test_algebra_theorems"
  "test_algebra_theorems.pdb"
  "test_algebra_theorems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algebra_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
