# Empty dependencies file for test_fragile.
# This may be replaced when dependencies are built.
