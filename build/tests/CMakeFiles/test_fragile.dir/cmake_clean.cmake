file(REMOVE_RECURSE
  "CMakeFiles/test_fragile.dir/test_fragile.cpp.o"
  "CMakeFiles/test_fragile.dir/test_fragile.cpp.o.d"
  "test_fragile"
  "test_fragile.pdb"
  "test_fragile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fragile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
