# Empty dependencies file for test_algebra_oracle.
# This may be replaced when dependencies are built.
