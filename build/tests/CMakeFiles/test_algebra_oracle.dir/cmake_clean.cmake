file(REMOVE_RECURSE
  "CMakeFiles/test_algebra_oracle.dir/test_algebra_oracle.cpp.o"
  "CMakeFiles/test_algebra_oracle.dir/test_algebra_oracle.cpp.o.d"
  "test_algebra_oracle"
  "test_algebra_oracle.pdb"
  "test_algebra_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algebra_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
