file(REMOVE_RECURSE
  "CMakeFiles/test_lspec_monitors.dir/test_lspec_monitors.cpp.o"
  "CMakeFiles/test_lspec_monitors.dir/test_lspec_monitors.cpp.o.d"
  "test_lspec_monitors"
  "test_lspec_monitors.pdb"
  "test_lspec_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lspec_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
