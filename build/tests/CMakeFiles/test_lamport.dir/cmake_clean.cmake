file(REMOVE_RECURSE
  "CMakeFiles/test_lamport.dir/test_lamport.cpp.o"
  "CMakeFiles/test_lamport.dir/test_lamport.cpp.o.d"
  "test_lamport"
  "test_lamport.pdb"
  "test_lamport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lamport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
