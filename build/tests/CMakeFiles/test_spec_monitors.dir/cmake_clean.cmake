file(REMOVE_RECURSE
  "CMakeFiles/test_spec_monitors.dir/test_spec_monitors.cpp.o"
  "CMakeFiles/test_spec_monitors.dir/test_spec_monitors.cpp.o.d"
  "test_spec_monitors"
  "test_spec_monitors.pdb"
  "test_spec_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
