file(REMOVE_RECURSE
  "CMakeFiles/bench_theorems_random.dir/bench/bench_theorems_random.cpp.o"
  "CMakeFiles/bench_theorems_random.dir/bench/bench_theorems_random.cpp.o.d"
  "bench/bench_theorems_random"
  "bench/bench_theorems_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorems_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
