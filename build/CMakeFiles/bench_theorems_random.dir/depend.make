# Empty dependencies file for bench_theorems_random.
# This may be replaced when dependencies are built.
