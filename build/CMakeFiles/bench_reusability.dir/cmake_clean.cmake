file(REMOVE_RECURSE
  "CMakeFiles/bench_reusability.dir/bench/bench_reusability.cpp.o"
  "CMakeFiles/bench_reusability.dir/bench/bench_reusability.cpp.o.d"
  "bench/bench_reusability"
  "bench/bench_reusability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reusability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
