# Empty dependencies file for bench_reusability.
# This may be replaced when dependencies are built.
