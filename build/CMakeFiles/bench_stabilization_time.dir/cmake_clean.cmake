file(REMOVE_RECURSE
  "CMakeFiles/bench_stabilization_time.dir/bench/bench_stabilization_time.cpp.o"
  "CMakeFiles/bench_stabilization_time.dir/bench/bench_stabilization_time.cpp.o.d"
  "bench/bench_stabilization_time"
  "bench/bench_stabilization_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stabilization_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
