# Empty compiler generated dependencies file for bench_stabilization_time.
# This may be replaced when dependencies are built.
