file(REMOVE_RECURSE
  "CMakeFiles/bench_deadlock_recovery.dir/bench/bench_deadlock_recovery.cpp.o"
  "CMakeFiles/bench_deadlock_recovery.dir/bench/bench_deadlock_recovery.cpp.o.d"
  "bench/bench_deadlock_recovery"
  "bench/bench_deadlock_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadlock_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
