file(REMOVE_RECURSE
  "CMakeFiles/bench_graybox_tolerance.dir/bench/bench_graybox_tolerance.cpp.o"
  "CMakeFiles/bench_graybox_tolerance.dir/bench/bench_graybox_tolerance.cpp.o.d"
  "bench/bench_graybox_tolerance"
  "bench/bench_graybox_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graybox_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
