# Empty compiler generated dependencies file for bench_graybox_tolerance.
# This may be replaced when dependencies are built.
