file(REMOVE_RECURSE
  "CMakeFiles/bench_timeout_tuning.dir/bench/bench_timeout_tuning.cpp.o"
  "CMakeFiles/bench_timeout_tuning.dir/bench/bench_timeout_tuning.cpp.o.d"
  "bench/bench_timeout_tuning"
  "bench/bench_timeout_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeout_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
