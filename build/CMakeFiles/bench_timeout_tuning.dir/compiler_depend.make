# Empty compiler generated dependencies file for bench_timeout_tuning.
# This may be replaced when dependencies are built.
