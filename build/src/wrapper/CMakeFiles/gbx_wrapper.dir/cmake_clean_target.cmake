file(REMOVE_RECURSE
  "libgbx_wrapper.a"
)
