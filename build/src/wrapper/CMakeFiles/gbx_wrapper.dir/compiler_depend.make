# Empty compiler generated dependencies file for gbx_wrapper.
# This may be replaced when dependencies are built.
