file(REMOVE_RECURSE
  "CMakeFiles/gbx_wrapper.dir/graybox_wrapper.cpp.o"
  "CMakeFiles/gbx_wrapper.dir/graybox_wrapper.cpp.o.d"
  "libgbx_wrapper.a"
  "libgbx_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
