
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/me/client.cpp" "src/me/CMakeFiles/gbx_me.dir/client.cpp.o" "gcc" "src/me/CMakeFiles/gbx_me.dir/client.cpp.o.d"
  "/root/repo/src/me/fragile.cpp" "src/me/CMakeFiles/gbx_me.dir/fragile.cpp.o" "gcc" "src/me/CMakeFiles/gbx_me.dir/fragile.cpp.o.d"
  "/root/repo/src/me/lamport.cpp" "src/me/CMakeFiles/gbx_me.dir/lamport.cpp.o" "gcc" "src/me/CMakeFiles/gbx_me.dir/lamport.cpp.o.d"
  "/root/repo/src/me/ricart_agrawala.cpp" "src/me/CMakeFiles/gbx_me.dir/ricart_agrawala.cpp.o" "gcc" "src/me/CMakeFiles/gbx_me.dir/ricart_agrawala.cpp.o.d"
  "/root/repo/src/me/tme_process.cpp" "src/me/CMakeFiles/gbx_me.dir/tme_process.cpp.o" "gcc" "src/me/CMakeFiles/gbx_me.dir/tme_process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gbx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/gbx_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gbx_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
