# Empty dependencies file for gbx_me.
# This may be replaced when dependencies are built.
