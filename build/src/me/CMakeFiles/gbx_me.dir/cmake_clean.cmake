file(REMOVE_RECURSE
  "CMakeFiles/gbx_me.dir/client.cpp.o"
  "CMakeFiles/gbx_me.dir/client.cpp.o.d"
  "CMakeFiles/gbx_me.dir/fragile.cpp.o"
  "CMakeFiles/gbx_me.dir/fragile.cpp.o.d"
  "CMakeFiles/gbx_me.dir/lamport.cpp.o"
  "CMakeFiles/gbx_me.dir/lamport.cpp.o.d"
  "CMakeFiles/gbx_me.dir/ricart_agrawala.cpp.o"
  "CMakeFiles/gbx_me.dir/ricart_agrawala.cpp.o.d"
  "CMakeFiles/gbx_me.dir/tme_process.cpp.o"
  "CMakeFiles/gbx_me.dir/tme_process.cpp.o.d"
  "libgbx_me.a"
  "libgbx_me.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_me.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
