file(REMOVE_RECURSE
  "libgbx_me.a"
)
