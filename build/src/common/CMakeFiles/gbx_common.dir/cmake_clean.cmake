file(REMOVE_RECURSE
  "CMakeFiles/gbx_common.dir/flags.cpp.o"
  "CMakeFiles/gbx_common.dir/flags.cpp.o.d"
  "CMakeFiles/gbx_common.dir/rng.cpp.o"
  "CMakeFiles/gbx_common.dir/rng.cpp.o.d"
  "CMakeFiles/gbx_common.dir/stats.cpp.o"
  "CMakeFiles/gbx_common.dir/stats.cpp.o.d"
  "CMakeFiles/gbx_common.dir/table.cpp.o"
  "CMakeFiles/gbx_common.dir/table.cpp.o.d"
  "libgbx_common.a"
  "libgbx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
