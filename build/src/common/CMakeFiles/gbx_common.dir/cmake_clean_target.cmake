file(REMOVE_RECURSE
  "libgbx_common.a"
)
