# Empty compiler generated dependencies file for gbx_common.
# This may be replaced when dependencies are built.
