file(REMOVE_RECURSE
  "libgbx_net.a"
)
