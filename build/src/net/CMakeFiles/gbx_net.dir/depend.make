# Empty dependencies file for gbx_net.
# This may be replaced when dependencies are built.
