file(REMOVE_RECURSE
  "CMakeFiles/gbx_net.dir/channel.cpp.o"
  "CMakeFiles/gbx_net.dir/channel.cpp.o.d"
  "CMakeFiles/gbx_net.dir/fault_injector.cpp.o"
  "CMakeFiles/gbx_net.dir/fault_injector.cpp.o.d"
  "CMakeFiles/gbx_net.dir/network.cpp.o"
  "CMakeFiles/gbx_net.dir/network.cpp.o.d"
  "libgbx_net.a"
  "libgbx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
