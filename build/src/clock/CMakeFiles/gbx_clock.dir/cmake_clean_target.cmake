file(REMOVE_RECURSE
  "libgbx_clock.a"
)
