file(REMOVE_RECURSE
  "CMakeFiles/gbx_clock.dir/logical_clock.cpp.o"
  "CMakeFiles/gbx_clock.dir/logical_clock.cpp.o.d"
  "CMakeFiles/gbx_clock.dir/timestamp.cpp.o"
  "CMakeFiles/gbx_clock.dir/timestamp.cpp.o.d"
  "CMakeFiles/gbx_clock.dir/vector_clock.cpp.o"
  "CMakeFiles/gbx_clock.dir/vector_clock.cpp.o.d"
  "libgbx_clock.a"
  "libgbx_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
