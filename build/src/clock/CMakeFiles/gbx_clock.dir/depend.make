# Empty dependencies file for gbx_clock.
# This may be replaced when dependencies are built.
