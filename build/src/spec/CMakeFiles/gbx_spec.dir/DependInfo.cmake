
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/violation.cpp" "src/spec/CMakeFiles/gbx_spec.dir/violation.cpp.o" "gcc" "src/spec/CMakeFiles/gbx_spec.dir/violation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gbx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
