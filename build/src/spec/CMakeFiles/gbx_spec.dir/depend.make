# Empty dependencies file for gbx_spec.
# This may be replaced when dependencies are built.
