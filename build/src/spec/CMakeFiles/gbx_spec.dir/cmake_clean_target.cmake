file(REMOVE_RECURSE
  "libgbx_spec.a"
)
