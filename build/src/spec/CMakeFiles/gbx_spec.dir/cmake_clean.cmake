file(REMOVE_RECURSE
  "CMakeFiles/gbx_spec.dir/violation.cpp.o"
  "CMakeFiles/gbx_spec.dir/violation.cpp.o.d"
  "libgbx_spec.a"
  "libgbx_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
