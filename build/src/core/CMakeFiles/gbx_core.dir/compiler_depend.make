# Empty compiler generated dependencies file for gbx_core.
# This may be replaced when dependencies are built.
