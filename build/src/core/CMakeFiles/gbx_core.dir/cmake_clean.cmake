file(REMOVE_RECURSE
  "CMakeFiles/gbx_core.dir/experiment.cpp.o"
  "CMakeFiles/gbx_core.dir/experiment.cpp.o.d"
  "CMakeFiles/gbx_core.dir/harness.cpp.o"
  "CMakeFiles/gbx_core.dir/harness.cpp.o.d"
  "CMakeFiles/gbx_core.dir/stabilization.cpp.o"
  "CMakeFiles/gbx_core.dir/stabilization.cpp.o.d"
  "libgbx_core.a"
  "libgbx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
