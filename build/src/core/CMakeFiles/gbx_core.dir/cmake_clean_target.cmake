file(REMOVE_RECURSE
  "libgbx_core.a"
)
