# Empty dependencies file for gbx_lspec.
# This may be replaced when dependencies are built.
