
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lspec/lspec_clause_monitors.cpp" "src/lspec/CMakeFiles/gbx_lspec.dir/lspec_clause_monitors.cpp.o" "gcc" "src/lspec/CMakeFiles/gbx_lspec.dir/lspec_clause_monitors.cpp.o.d"
  "/root/repo/src/lspec/program_monitors.cpp" "src/lspec/CMakeFiles/gbx_lspec.dir/program_monitors.cpp.o" "gcc" "src/lspec/CMakeFiles/gbx_lspec.dir/program_monitors.cpp.o.d"
  "/root/repo/src/lspec/snapshot.cpp" "src/lspec/CMakeFiles/gbx_lspec.dir/snapshot.cpp.o" "gcc" "src/lspec/CMakeFiles/gbx_lspec.dir/snapshot.cpp.o.d"
  "/root/repo/src/lspec/tme_monitors.cpp" "src/lspec/CMakeFiles/gbx_lspec.dir/tme_monitors.cpp.o" "gcc" "src/lspec/CMakeFiles/gbx_lspec.dir/tme_monitors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gbx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gbx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/gbx_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gbx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/me/CMakeFiles/gbx_me.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/gbx_spec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
