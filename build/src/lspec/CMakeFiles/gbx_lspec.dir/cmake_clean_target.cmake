file(REMOVE_RECURSE
  "libgbx_lspec.a"
)
