file(REMOVE_RECURSE
  "CMakeFiles/gbx_lspec.dir/lspec_clause_monitors.cpp.o"
  "CMakeFiles/gbx_lspec.dir/lspec_clause_monitors.cpp.o.d"
  "CMakeFiles/gbx_lspec.dir/program_monitors.cpp.o"
  "CMakeFiles/gbx_lspec.dir/program_monitors.cpp.o.d"
  "CMakeFiles/gbx_lspec.dir/snapshot.cpp.o"
  "CMakeFiles/gbx_lspec.dir/snapshot.cpp.o.d"
  "CMakeFiles/gbx_lspec.dir/tme_monitors.cpp.o"
  "CMakeFiles/gbx_lspec.dir/tme_monitors.cpp.o.d"
  "libgbx_lspec.a"
  "libgbx_lspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_lspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
