# Empty dependencies file for gbx_algebra.
# This may be replaced when dependencies are built.
