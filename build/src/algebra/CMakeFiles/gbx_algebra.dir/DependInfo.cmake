
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/bitset.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/bitset.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/bitset.cpp.o.d"
  "/root/repo/src/algebra/checks.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/checks.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/checks.cpp.o.d"
  "/root/repo/src/algebra/generate.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/generate.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/generate.cpp.o.d"
  "/root/repo/src/algebra/scc.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/scc.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/scc.cpp.o.d"
  "/root/repo/src/algebra/synthesis.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/synthesis.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/synthesis.cpp.o.d"
  "/root/repo/src/algebra/system.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/system.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/system.cpp.o.d"
  "/root/repo/src/algebra/tolerance.cpp" "src/algebra/CMakeFiles/gbx_algebra.dir/tolerance.cpp.o" "gcc" "src/algebra/CMakeFiles/gbx_algebra.dir/tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
