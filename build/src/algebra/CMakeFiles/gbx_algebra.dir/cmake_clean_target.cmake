file(REMOVE_RECURSE
  "libgbx_algebra.a"
)
