file(REMOVE_RECURSE
  "CMakeFiles/gbx_algebra.dir/bitset.cpp.o"
  "CMakeFiles/gbx_algebra.dir/bitset.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/checks.cpp.o"
  "CMakeFiles/gbx_algebra.dir/checks.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/generate.cpp.o"
  "CMakeFiles/gbx_algebra.dir/generate.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/scc.cpp.o"
  "CMakeFiles/gbx_algebra.dir/scc.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/synthesis.cpp.o"
  "CMakeFiles/gbx_algebra.dir/synthesis.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/system.cpp.o"
  "CMakeFiles/gbx_algebra.dir/system.cpp.o.d"
  "CMakeFiles/gbx_algebra.dir/tolerance.cpp.o"
  "CMakeFiles/gbx_algebra.dir/tolerance.cpp.o.d"
  "libgbx_algebra.a"
  "libgbx_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
