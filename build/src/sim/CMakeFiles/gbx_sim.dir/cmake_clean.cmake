file(REMOVE_RECURSE
  "CMakeFiles/gbx_sim.dir/scheduler.cpp.o"
  "CMakeFiles/gbx_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/gbx_sim.dir/timer.cpp.o"
  "CMakeFiles/gbx_sim.dir/timer.cpp.o.d"
  "CMakeFiles/gbx_sim.dir/trace.cpp.o"
  "CMakeFiles/gbx_sim.dir/trace.cpp.o.d"
  "libgbx_sim.a"
  "libgbx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
