# Empty compiler generated dependencies file for gbx_sim.
# This may be replaced when dependencies are built.
