file(REMOVE_RECURSE
  "libgbx_sim.a"
)
