
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gbx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wrapper/CMakeFiles/gbx_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/lspec/CMakeFiles/gbx_lspec.dir/DependInfo.cmake"
  "/root/repo/build/src/me/CMakeFiles/gbx_me.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/gbx_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/gbx_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gbx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/gbx_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gbx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gbx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
