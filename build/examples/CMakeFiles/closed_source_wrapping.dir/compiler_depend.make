# Empty compiler generated dependencies file for closed_source_wrapping.
# This may be replaced when dependencies are built.
