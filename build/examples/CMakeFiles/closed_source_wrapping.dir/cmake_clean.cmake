file(REMOVE_RECURSE
  "CMakeFiles/closed_source_wrapping.dir/closed_source_wrapping.cpp.o"
  "CMakeFiles/closed_source_wrapping.dir/closed_source_wrapping.cpp.o.d"
  "closed_source_wrapping"
  "closed_source_wrapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_source_wrapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
