file(REMOVE_RECURSE
  "CMakeFiles/spec_monitor_demo.dir/spec_monitor_demo.cpp.o"
  "CMakeFiles/spec_monitor_demo.dir/spec_monitor_demo.cpp.o.d"
  "spec_monitor_demo"
  "spec_monitor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_monitor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
