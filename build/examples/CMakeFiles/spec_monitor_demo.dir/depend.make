# Empty dependencies file for spec_monitor_demo.
# This may be replaced when dependencies are built.
