file(REMOVE_RECURSE
  "CMakeFiles/fault_tour.dir/fault_tour.cpp.o"
  "CMakeFiles/fault_tour.dir/fault_tour.cpp.o.d"
  "fault_tour"
  "fault_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
